//! Compiled inference plans: the serving engine behind `Network::logits`.
//!
//! Defensive Approximation deploys a *fixed* trained network on an
//! approximate multiplier (paper §4), which makes serving-time inference the
//! hot path. The per-layer [`crate::Network::forward`] is built for
//! training: every call re-derives effective weights, reshapes them,
//! materializes an im2col matrix per item, and allocates a cache it
//! immediately discards. An [`InferencePlan`] walks the layer stack **once**
//! and compiles it against the arithmetic unit:
//!
//! * every convolution weight's sign/exponent/significand is pre-decomposed
//!   into a [`da_arith::PreparedOperands`] matrix consumed directly by the
//!   kernel entry points [`da_arith::BatchKernel::axpy_prepared`] and
//!   [`da_arith::BatchKernel::gemm_tile`] (no per-call operand
//!   decomposition; dense layers keep raw pre-transposed weights, because
//!   their reference GEMM makes the *activation* — not the weight — the
//!   kernel's shared operand, and bit-identity pins that operand order);
//! * convolution weights are pre-reshaped to `[Cout, Cin·Kh·Kw]` and dense
//!   weights pre-transposed to `[In, Out]` (no per-call clone + reshape);
//! * convolutions run as **fused conv+bias+ReLU output tiles** that gather
//!   input patches on the fly into a small reused buffer instead of
//!   materializing full im2col columns;
//! * activations ping-pong through a reusable workspace arena, so a
//!   steady-state [`InferencePlan::predict_batch`] performs no heap
//!   allocation for intermediates (only the returned logits tensor is
//!   allocated).
//!
//! Plans are **bit-identical** to `Network::forward(Mode::Eval)` for every
//! multiplier kind (property-tested in `tests/engine_equivalence.rs`),
//! including NaN/Inf/denormal inputs: per output element the reduction
//! order, operand order, and special-value branches all match the per-layer
//! reference, which stays in the tree as the semantic ground truth.
//!
//! A plan snapshots the network at compile time (weights, quantization,
//! batch-norm running statistics). [`crate::Network`] caches a plan
//! internally and invalidates it whenever weights, the multiplier, or
//! training-mode statistics change, so `Network::logits`, `predict`,
//! `probabilities`, `accuracy`, and the attack harness's `predict_batch`
//! all ride the compiled path transparently.
//!
//! # Choosing plan precision
//!
//! Plans compile in one of three numeric modes ([`PlanPrecision`]):
//!
//! * **F32** ([`InferencePlan::compile`], the default everywhere): serves
//!   over the batched f32 kernels, **bit-identical** to
//!   `forward(Mode::Eval)`. Choose it whenever exact parity with the
//!   training-time datapath matters (experiments, attacks, conformance).
//! * **Int8** ([`InferencePlan::compile_quantized`]): quantizes weights per
//!   tensor and activations per layer boundary (calibrated on a sample
//!   batch you supply), then runs every conv/dense GEMM as a
//!   [`da_arith::quantized::ProductLut`] gather — the table holds the
//!   *actual* multiplier's product for every code pair, so the plan stays
//!   faithful to the approximate hardware while skipping all per-element
//!   decompose/classify/clamp work. Logits differ from the f32 plan by
//!   quantization error only (accuracy bounded in-test on LeNet); the plan
//!   itself is deterministic and schedule-independent, so
//!   [`crate::serve::BatchServer`] serves it under the same batching
//!   contract. Choose it for throughput: ~2.3–2.7× the planned-f32 Ax-FPM
//!   serving rate on the reference container (batch 1 vs batched serving;
//!   capped by gather-instruction throughput), and three orders of
//!   magnitude for gate-level HEAP, whose LUT gathers run exactly as fast
//!   as everyone else's.
//! * **Int4Weights** ([`InferencePlan::compile_quantized_int4`]): like
//!   Int8, but weights narrow to 16 codes per tensor so each layer's
//!   product table collapses to 256×16 entries and the GEMM runs as an
//!   in-register shuffle ([`da_arith::quantized::lut4_gemm`]) instead of a
//!   hardware gather — several times the int8 gather rate. Compilation
//!   measures each conv/dense layer's int4-vs-int8 output gap on the
//!   calibration batch and **falls back to int8 per layer** when the gap
//!   exceeds the conformance threshold, so a plan is a mixed-precision
//!   snapshot ([`InferencePlan::int4_layer_mix`] reports the split).
//!   Choose it when weight tensors tolerate 4-bit codes (the compiler
//!   decides per layer, so it is never worse than Int8 in accuracy by more
//!   than the threshold).
//!
//! # Quickstart
//!
//! ```
//! use da_arith::MultiplierKind;
//! use da_nn::engine::InferencePlan;
//! use da_nn::zoo::lenet5;
//! use da_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = lenet5(10, &mut rng);
//! // Deploy on the paper's Ax-FPM and compile once against it...
//! net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
//! let plan = InferencePlan::compile(&net, net.multiplier().cloned())
//!     .expect("all built-in layers have compiled forms");
//! // ...then serve: repeated calls reuse the same workspace arena.
//! let x = Tensor::zeros(&[2, 1, 28, 28]);
//! assert_eq!(plan.predict_batch(&x).shape(), &[2, 10]);
//! assert_eq!(plan.predict(&x).len(), 2);
//! // (`net.plan()` compiles and caches the same thing behind `logits`.)
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use da_arith::quantized::{
    lut4_gemm, lut_gemm, requantize_bias_act, Lut4Order, ProductLut, ProductLut4, QuantParams,
    QuantParams4,
};
use da_arith::storage::Storage;
use da_arith::{BatchKernel, ExactMultiplier, Multiplier, PreparedOperands, RowClass};
use da_tensor::ops::ConvGeometry;
use da_tensor::parallel::par_map_chunks_with;
use da_tensor::Tensor;

use crate::layers::transpose2d;
use crate::quant::quantize_k;
use crate::Network;

/// Output pixels per fused convolution tile: the gather buffer holds
/// `Cin·Kh·Kw × CONV_TILE` patch values, matching the batched GEMM's column
/// tile so axpy slices stay L1-resident. A whole multiple of the arithmetic
/// backend's SIMD block width, so every full tile feeds the lane kernels
/// complete vectors (only a conv's final ragged tile runs scalar tails).
const CONV_TILE: usize = 32 * da_arith::simd::LANES;

/// Column cap per fused convolution tile on the quantized path. A whole
/// multiple of the widest gather lane count (16). Wider tiles amortize the
/// product table's cache-line fills across more gathers per row visit —
/// small output planes pack several items into one tile to reach the cap,
/// and large planes split into balanced multiples-of-16 tiles under it.
const QCONV_TILE: usize = 512;

/// Balanced per-item tile width for a `p_total`-pixel output plane: split
/// into equal tiles under [`QCONV_TILE`], rounded up to a multiple of 16 so
/// full tiles feed whole gather lanes (the final tile absorbs the ragged
/// remainder).
fn qconv_tile_width(p_total: usize) -> usize {
    if p_total <= QCONV_TILE {
        return p_total;
    }
    let tiles = p_total.div_ceil(QCONV_TILE);
    p_total.div_ceil(tiles).div_ceil(16) * 16
}

/// Below this many MACs per batch, `predict_batch` runs items sequentially
/// (thread spawn costs more than the arithmetic saves — same threshold
/// family as the batched GEMM).
const PAR_MIN_MACS: usize = 1 << 15;

/// A layer's compiled serving-time form, produced by
/// [`crate::Layer::compile_eval`] and consumed by [`InferencePlan::compile`].
///
/// Weight-bearing variants carry the *effective* (possibly quantized)
/// parameters, snapshotted at compile time.
pub enum CompiledLayer {
    /// 2-D convolution with effective weights `[Cout, Cin, Kh, Kw]`.
    Conv2d {
        /// Effective (quantized if enabled) weights.
        weight: Tensor,
        /// Bias, `[Cout]`.
        bias: Tensor,
        /// Stride (both dimensions).
        stride: usize,
        /// Zero padding (all sides).
        pad: usize,
        /// The multiplier installed in the layer itself — the plan compiler
        /// refuses to compile when it disagrees with the plan's multiplier
        /// (otherwise the plan would silently diverge from `forward`).
        multiplier: Option<Arc<dyn Multiplier>>,
    },
    /// Fully connected layer with effective weights `[Out, In]`.
    Dense {
        /// Effective (quantized if enabled) weights.
        weight: Tensor,
        /// Bias, `[Out]`.
        bias: Tensor,
        /// The multiplier installed in the layer itself (see
        /// [`CompiledLayer::Conv2d::multiplier`]).
        multiplier: Option<Arc<dyn Multiplier>>,
    },
    /// Max pooling.
    MaxPool2d {
        /// Window size.
        kernel: usize,
        /// Window stride.
        stride: usize,
    },
    /// Rectified linear unit (fused into a preceding conv/dense when
    /// possible).
    Relu,
    /// Shape-only collapse to `[N, features]` (free at run time).
    Flatten,
    /// Evaluation-mode no-op (dropout); dropped from the plan.
    Identity,
    /// Batch normalization with running statistics snapshotted.
    BatchNorm {
        /// Running per-channel means.
        mean: Vec<f32>,
        /// Running per-channel variances.
        var: Vec<f32>,
        /// Scale parameters.
        gamma: Vec<f32>,
        /// Shift parameters.
        beta: Vec<f32>,
        /// Variance epsilon.
        eps: f32,
    },
    /// DoReFa activation quantizer.
    QuantAct {
        /// Quantization bit width.
        bits: u32,
    },
}

/// Conv weights in the form the execution mode consumes: raw `f32`s for the
/// native exact path, pre-decomposed operands for the kernel path. Either-or
/// so a plan never stores the weight matrix twice.
pub(crate) enum ConvWeights {
    /// Pre-reshaped `[Cout, Cin·Kh·Kw]`, row-major (plans without a
    /// multiplier).
    Raw(Storage<f32>),
    /// Pre-decomposed `[Cout, Cin·Kh·Kw]` (plans with a multiplier).
    Prepared(PreparedOperands),
}

/// One executable step of a compiled plan.
///
/// `pub(crate)` (with its storage enums) so `crate::snapshot` can walk a
/// compiled plan when saving and reassemble steps over mapped storage when
/// loading; outside the crate the plan stays opaque.
pub(crate) enum Step {
    Conv {
        weights: ConvWeights,
        bias: Vec<f32>,
        cout: usize,
        cin: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
        fuse_relu: bool,
    },
    Dense {
        /// Pre-transposed weights `[In, Out]`, row-major (owned, or
        /// borrowed from a snapshot mapping).
        wt: Storage<f32>,
        /// Per-`wt`-row [`RowClass`], classified once at compile time so the
        /// kernel's class-matched lane sweeps skip the per-call row scan
        /// (dense weights are the kernel's right-hand rows — the activation
        /// is the shared operand, pinned by the reference operand order).
        wt_class: Vec<RowClass>,
        bias: Vec<f32>,
        in_features: usize,
        out_features: usize,
        fuse_relu: bool,
    },
    MaxPool {
        window: usize,
        stride: usize,
    },
    Relu,
    Flatten,
    BatchNorm {
        mean: Vec<f32>,
        /// Pre-computed `(var + eps).sqrt()` per channel (bit-identical to
        /// the reference, which recomputes the same expression per element).
        denom: Vec<f32>,
        gamma: Vec<f32>,
        beta: Vec<f32>,
    },
    QuantAct {
        bits: u32,
    },
    // ----- int8 steps (present only in `PlanPrecision::Int8` plans) -----
    /// Quantize the `f32` input item into activation codes (always the
    /// first step of a quantized plan).
    QuantizeInput {
        params: QuantParams,
    },
    /// Fused quantized conv: LUT-gather GEMM over weight/patch codes with
    /// `f32` accumulation, then bias (+ ReLU) and the output stage.
    QConv {
        /// Weight codes, `[Cout, Cin·Kh·Kw]` row-major (the LUT's `a` side).
        qweight: Storage<u8>,
        /// Product table over (weight, activation) codes (shared across
        /// steps with identical quantizer pairs).
        lut: Arc<ProductLut>,
        bias: Vec<f32>,
        cout: usize,
        cin: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
        fuse_relu: bool,
        out: QOut,
    },
    /// Fused quantized dense layer: the `rows == 1` LUT GEMM with the
    /// activation codes as the shared (`a`) operand — mirroring the f32
    /// reference, whose dense GEMM also makes the activation the left
    /// operand (approximate multipliers need not be commutative).
    QDense {
        /// Pre-transposed weight codes, `[In, Out]` row-major (the `b` side).
        qwt: Storage<u8>,
        /// Product table over (activation, weight) codes (shared across
        /// steps with identical quantizer pairs).
        lut: Arc<ProductLut>,
        bias: Vec<f32>,
        in_features: usize,
        out_features: usize,
        fuse_relu: bool,
        out: QOut,
    },
    /// Fused **int4-weight** quantized conv, run *transposed*: patch pixels
    /// are the GEMM rows and out-channels the vectorized columns, so the
    /// 4-bit weight codes vary along the in-register shuffle axis (see
    /// [`da_arith::quantized::lut4_gemm`]).
    QConv4 {
        /// Transposed weight codes, `[Cin·Kh·Kw, Cout]` row-major, low
        /// nibble.
        qweight_t: Storage<u8>,
        /// 256×16 product table over (weight, activation) codes.
        lut: Arc<ProductLut4>,
        bias: Vec<f32>,
        cout: usize,
        cin: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
        fuse_relu: bool,
        out: QOut,
    },
    /// Fused int4-weight dense layer: a multi-row shuffle GEMM with the
    /// activation codes as rows (the multiplier's left operand, mirroring
    /// the f32 reference) and weight codes along the shuffle axis.
    QDense4 {
        /// Pre-transposed weight codes `[In, Out]` row-major, low nibble.
        qwt: Storage<u8>,
        /// 256×16 product table over (activation, weight) codes.
        lut: Arc<ProductLut4>,
        bias: Vec<f32>,
        in_features: usize,
        out_features: usize,
        fuse_relu: bool,
        out: QOut,
    },
    /// Max pooling directly on codes (dequantization is strictly
    /// increasing, so the max code is the code of the max value).
    QMaxPool {
        window: usize,
        stride: usize,
    },
    /// Standalone ReLU on codes: `max(code, zero_point)` (the zero point
    /// dequantizes to exactly 0.0).
    QRelu {
        zero_point: u8,
    },
    /// Decode codes back to `f32` (appended when a quantized plan does not
    /// end in a conv/dense step, which produce `f32` logits directly).
    QDequantize {
        params: QuantParams,
    },
}

/// Where a quantized conv/dense step sends its epilogue output.
#[derive(Clone, Copy)]
pub(crate) enum QOut {
    /// Requantize into activation codes for the next quantized step.
    Codes(QuantParams),
    /// Leave `f32` (the plan's final logits).
    Float,
}

/// Numeric mode a plan was compiled in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanPrecision {
    /// Full-precision serving over the batched f32 kernels
    /// ([`InferencePlan::compile`]).
    F32,
    /// Int8 serving over LUT-gather kernels
    /// ([`InferencePlan::compile_quantized`]).
    Int8,
    /// Int8 activations with **int4 weight codes** where calibration allows:
    /// conv/dense layers run the in-register shuffle GEMM
    /// ([`da_arith::quantized::lut4_gemm`]) over a 256×16 table, falling
    /// back per layer to the int8 gather when the measured accuracy gap is
    /// too large ([`InferencePlan::compile_quantized_int4`]).
    Int4Weights,
}

/// Coarse numeric family of a plan — what a serving endpoint's callers can
/// observe. Int8 and int4-weight plans serve the same quantized contract,
/// so they share a family; hot-reloading between them is allowed while a
/// float↔quantized swap is not (logit bit patterns would change class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecisionFamily {
    /// Full-precision f32 serving.
    Float,
    /// Quantized serving (int8 activations, int8 or int4 weight codes).
    Quantized,
}

/// The input contract of a plan's first weight-bearing step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanInput {
    /// Expects `[C, H, W]` items with this channel count (H, W free).
    Conv { cin: usize },
    /// Expects items that flatten to exactly this many features.
    Dense { features: usize },
}

/// A plan's externally observable serving contract: what shapes it accepts,
/// how wide its logits are, and which numeric family it answers in. Two
/// plans with equal interfaces are interchangeable behind a serving
/// endpoint — the shape handshake hot reload enforces ([`crate::serve`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanInterface {
    /// First weight-bearing step's input constraint (`None` for a plan with
    /// no weight-bearing steps — nothing to constrain).
    pub input: Option<PlanInput>,
    /// Output width of the final dense step, if the plan ends in one.
    pub output_features: Option<usize>,
    /// Numeric family the plan serves in.
    pub family: PrecisionFamily,
}

impl std::fmt::Display for PlanInterface {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.input {
            Some(PlanInput::Conv { cin }) => write!(f, "conv(cin={cin})")?,
            Some(PlanInput::Dense { features }) => write!(f, "dense(in={features})")?,
            None => write!(f, "any-input")?,
        }
        match self.output_features {
            Some(n) => write!(f, " -> {n} logits")?,
            None => write!(f, " -> passthrough")?,
        }
        write!(f, ", {:?}", self.family)
    }
}

/// Per-layer int4 acceptance threshold: a conv/dense layer keeps int4
/// weight codes only when the calibration-measured gap — the max absolute
/// difference between its int4 and int8 post-bias pre-activation outputs,
/// normalized by the int8 output spread — stays at or below this fraction.
/// Layers whose weight distribution collapses onto too few of the 16 codes
/// blow past it and fall back to the int8 gather.
pub const INT4_FALLBACK_GAP: f32 = 0.25;

/// Compile-time product-table cache: one [`ProductLut`] (64 KiB × 4 B) per
/// *distinct* ordered quantizer pair instead of one per layer — layers whose
/// operand ranges coincide (common after ReLU chains with shared weight
/// scales) share a single `Arc` allocation. Keys are ordered `(a, b)` pairs,
/// so conv tables (weights left) never falsely alias dense tables
/// (activations left) even when the parameter values match.
#[derive(Default)]
struct LutCache {
    int8: Vec<((QuantParams, QuantParams), Arc<ProductLut>)>,
    int4: Vec<((QuantParams, QuantParams4, Lut4Order), Arc<ProductLut4>)>,
}

impl LutCache {
    fn int8(&mut self, m: &dyn Multiplier, a: QuantParams, b: QuantParams) -> Arc<ProductLut> {
        if let Some((_, lut)) = self.int8.iter().find(|((ca, cb), _)| *ca == a && *cb == b) {
            return lut.clone();
        }
        let lut = Arc::new(ProductLut::build(m, a, b));
        self.int8.push(((a, b), lut.clone()));
        lut
    }

    fn int4(
        &mut self,
        m: &dyn Multiplier,
        act: QuantParams,
        w: QuantParams4,
        order: Lut4Order,
    ) -> Arc<ProductLut4> {
        if let Some((_, lut)) =
            self.int4.iter().find(|((ca, cw, co), _)| *ca == act && *cw == w && *co == order)
        {
            return lut.clone();
        }
        let lut = Arc::new(ProductLut4::build(m, act, w, order));
        self.int4.push(((act, w, order), lut.clone()));
        lut
    }
}

/// Per-step shapes resolved for one input item shape.
struct ResolvedShape {
    in_shape: Vec<usize>,
    out_shape: Vec<usize>,
}

/// Shape inference result for one per-item input shape: per-step shapes and
/// workspace sizing. Computed on the first `predict_batch` call and cached.
struct Layout {
    item_shape: Vec<usize>,
    resolved: Vec<ResolvedShape>,
    out_shape: Vec<usize>,
    out_len: usize,
    /// Max intermediate activation length (sizes each ping-pong buffer).
    buf_len: usize,
    /// Max conv patch-gather buffer length.
    gather_len: usize,
    /// Max intermediate code length **per item** (the `u8` ping-pong
    /// buffers of a quantized plan scale with the worker's item group;
    /// zero for f32 plans).
    qbuf_len: usize,
    /// Max `u8` patch-gather buffer length (quantized convs; group
    /// independent — conv tiles are capped at [`QCONV_TILE`] columns).
    qgather_len: usize,
    /// Max `f32` accumulator-tile length for quantized convs (group
    /// independent, same cap).
    facc_len: usize,
    /// Max quantized-dense width per item (the dense accumulator holds the
    /// whole item group: `group × dense_out_max`).
    dense_out_max: usize,
    /// Multiply-accumulates per item (parallelization heuristic).
    item_macs: usize,
}

/// Reusable per-worker buffers: two ping-pong activation buffers and the
/// conv patch-gather buffer.
#[derive(Default)]
struct Workspace {
    a: Vec<f32>,
    b: Vec<f32>,
    gather: Vec<f32>,
    /// `u8` ping-pong code buffers and patch gather (quantized plans only).
    qa: Vec<u8>,
    qb: Vec<u8>,
    qgather: Vec<u8>,
    /// `f32` accumulator tile for the LUT GEMMs (quantized plans only).
    facc: Vec<f32>,
}

impl Workspace {
    /// Grow buffers to the layout's requirements for a worker serving item
    /// groups of up to `group` items, counting growths.
    fn ensure(&mut self, layout: &Layout, group: usize, counter: &AtomicU64) {
        for (buf, want) in [
            (&mut self.a, layout.buf_len),
            (&mut self.b, layout.buf_len),
            (&mut self.gather, layout.gather_len),
            (&mut self.facc, layout.facc_len.max(group * layout.dense_out_max)),
        ] {
            if buf.len() < want {
                buf.resize(want, 0.0);
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }
        for (buf, want) in [
            (&mut self.qa, group * layout.qbuf_len),
            (&mut self.qb, group * layout.qbuf_len),
            (&mut self.qgather, layout.qgather_len),
        ] {
            if buf.len() < want {
                buf.resize(want, 0);
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A worker's execution state: a workspace checked out of the plan's pool
/// (returned on drop) and a per-worker arithmetic kernel.
struct WorkerState<'p> {
    pool: &'p Mutex<Vec<Workspace>>,
    ws: Workspace,
    kernel: Option<Box<dyn BatchKernel + Send + 'p>>,
}

impl Drop for WorkerState<'_> {
    fn drop(&mut self) {
        self.pool.lock().expect("workspace pool lock").push(std::mem::take(&mut self.ws));
    }
}

/// Which buffer currently holds the step input.
#[derive(Clone, Copy)]
enum SrcSlot {
    Input,
    A,
    B,
}

/// A network compiled for serving: pre-decomposed weights, fused conv
/// tiles, and a reusable workspace arena (see the module docs).
pub struct InferencePlan {
    pub(crate) multiplier: Option<Arc<dyn Multiplier>>,
    pub(crate) steps: Vec<Step>,
    /// Index of the last step that writes output (`None` if every step is a
    /// shape-only no-op).
    last_write: Option<usize>,
    pub(crate) precision: PlanPrecision,
    layout: Mutex<Option<Arc<Layout>>>,
    pool: Mutex<Vec<Workspace>>,
    workspace_allocs: AtomicU64,
}

impl InferencePlan {
    /// Assemble a plan directly from executable steps — the snapshot-load
    /// path (`crate::snapshot`), which reconstructs steps over mapped
    /// storage. Derived state (`last_write`, layout cache, workspace pool)
    /// is rebuilt exactly as the compile paths build it.
    pub(crate) fn from_steps(
        multiplier: Option<Arc<dyn Multiplier>>,
        steps: Vec<Step>,
        precision: PlanPrecision,
    ) -> InferencePlan {
        let last_write = steps.iter().rposition(|s| !matches!(s, Step::Flatten));
        InferencePlan {
            multiplier,
            steps,
            last_write,
            precision,
            layout: Mutex::new(None),
            pool: Mutex::new(Vec::new()),
            workspace_allocs: AtomicU64::new(0),
        }
    }
    /// Compile `network` against `multiplier` (pass
    /// `network.multiplier().cloned()` to match the installed one).
    ///
    /// Returns `None` if any layer has no compiled form
    /// ([`crate::Layer::compile_eval`] returned `None`), or if any
    /// weight-bearing layer carries a multiplier that disagrees with
    /// `multiplier` — a plan compiled past such a mismatch would silently
    /// diverge from `forward(Mode::Eval)`. Callers then fall back to the
    /// per-layer `forward`.
    pub fn compile(
        network: &Network,
        multiplier: Option<Arc<dyn Multiplier>>,
    ) -> Option<InferencePlan> {
        let mut steps: Vec<Step> = Vec::new();
        for layer in network.layers() {
            match layer.compile_eval()? {
                CompiledLayer::Identity => {}
                CompiledLayer::Relu => match steps.last_mut() {
                    Some(Step::Conv { fuse_relu, .. }) | Some(Step::Dense { fuse_relu, .. })
                        if !*fuse_relu =>
                    {
                        *fuse_relu = true;
                    }
                    _ => steps.push(Step::Relu),
                },
                CompiledLayer::Conv2d { weight, bias, stride, pad, multiplier: layer_mult } => {
                    if !same_multiplier(&multiplier, &layer_mult) {
                        return None;
                    }
                    let (cout, cin, kh, kw) = (
                        weight.shape()[0],
                        weight.shape()[1],
                        weight.shape()[2],
                        weight.shape()[3],
                    );
                    let wmat = weight.into_vec();
                    let weights = if multiplier.is_some() {
                        ConvWeights::Prepared(PreparedOperands::from_matrix(
                            &wmat,
                            cout,
                            cin * kh * kw,
                        ))
                    } else {
                        ConvWeights::Raw(Storage::Owned(wmat))
                    };
                    steps.push(Step::Conv {
                        weights,
                        bias: bias.into_vec(),
                        cout,
                        cin,
                        kh,
                        kw,
                        stride,
                        pad,
                        fuse_relu: false,
                    });
                }
                CompiledLayer::Dense { weight, bias, multiplier: layer_mult } => {
                    if !same_multiplier(&multiplier, &layer_mult) {
                        return None;
                    }
                    let (out_features, in_features) = (weight.shape()[0], weight.shape()[1]);
                    let wt = transpose2d(&weight).into_vec();
                    // Classify through the serving kernel so each kernel's
                    // sweeps get exactly the class granularity they expect
                    // (kernel-less plans run the raw native loop and never
                    // read the classes).
                    let wt_class = match &multiplier {
                        Some(m) if out_features > 0 => {
                            let classifier = m.batch_kernel();
                            wt.chunks(out_features).map(|r| classifier.classify_rhs(r)).collect()
                        }
                        _ => vec![RowClass::Normal; in_features],
                    };
                    steps.push(Step::Dense {
                        wt: Storage::Owned(wt),
                        wt_class,
                        bias: bias.into_vec(),
                        in_features,
                        out_features,
                        fuse_relu: false,
                    });
                }
                CompiledLayer::MaxPool2d { kernel, stride } => {
                    steps.push(Step::MaxPool { window: kernel, stride });
                }
                CompiledLayer::Flatten => steps.push(Step::Flatten),
                CompiledLayer::BatchNorm { mean, var, gamma, beta, eps } => {
                    let denom: Vec<f32> = var.iter().map(|&v| (v + eps).sqrt()).collect();
                    steps.push(Step::BatchNorm { mean, denom, gamma, beta });
                }
                CompiledLayer::QuantAct { bits } => steps.push(Step::QuantAct { bits }),
            }
        }
        let last_write = steps.iter().rposition(|s| !matches!(s, Step::Flatten));
        Some(InferencePlan {
            multiplier,
            steps,
            last_write,
            precision: PlanPrecision::F32,
            layout: Mutex::new(None),
            pool: Mutex::new(Vec::new()),
            workspace_allocs: AtomicU64::new(0),
        })
    }

    /// Compile `network` into an **int8 serving plan**: weights are
    /// quantized per tensor, activation ranges are calibrated by running
    /// `calibration` (a representative `[N, ...]` sample batch) through the
    /// f32 plan, and every conv/dense GEMM becomes a
    /// [`da_arith::quantized::lut_gemm`] gather over a per-layer
    /// [`ProductLut`] built from the *actual* multiplier — gate-level kinds
    /// included, so the table is exact w.r.t. the hardware model it
    /// replaces. Plans without a multiplier quantize against native `f32`
    /// products.
    ///
    /// The quantized plan intentionally does **not** reproduce the f32
    /// plan's logits bit for bit — int8 codes cannot — but it is itself
    /// fully deterministic, bit-identical to the scalar quantized reference
    /// GEMM (`lut_gemm_reference`), and identical across serving schedules,
    /// so the batch-server conformance contract carries over unchanged.
    /// Accuracy stays within a whisker of the f32 plan (bounded in-test on
    /// LeNet/MNIST).
    ///
    /// Returns `None` when [`InferencePlan::compile`] would (uncompilable
    /// layer, multiplier mismatch), or when the stack contains layers with
    /// no quantized form (batch norm, DoReFa activation quantizers) —
    /// callers fall back to f32 serving.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is not a non-empty batch of the shape the
    /// network serves.
    pub fn compile_quantized(
        network: &Network,
        multiplier: Option<Arc<dyn Multiplier>>,
        calibration: &Tensor,
    ) -> Option<InferencePlan> {
        let f32_plan = InferencePlan::compile(network, multiplier.clone())?;
        // Every step must have a quantized form before paying for the
        // calibration pass and the LUT builds.
        if f32_plan
            .steps
            .iter()
            .any(|s| matches!(s, Step::BatchNorm { .. } | Step::QuantAct { .. }))
        {
            return None;
        }
        let (input_range, step_ranges) = f32_plan.observe_ranges(calibration);
        let lut_mult: Arc<dyn Multiplier> =
            multiplier.clone().unwrap_or_else(|| Arc::new(ExactMultiplier));
        let mut lut_cache = LutCache::default();

        let mut act = QuantParams::from_range(input_range.0, input_range.1);
        let mut steps = vec![Step::QuantizeInput { params: act }];
        for (t, step) in f32_plan.steps.iter().enumerate() {
            match step {
                Step::Conv { weights, bias, cout, cin, kh, kw, stride, pad, fuse_relu } => {
                    let wmat: Vec<f32> = match weights {
                        ConvWeights::Raw(w) => w.as_slice().to_vec(),
                        ConvWeights::Prepared(p) => (0..p.rows())
                            .flat_map(|r| p.row(r).iter().map(|op| op.value()))
                            .collect(),
                    };
                    let (wlo, whi) = QuantParams::observe(&wmat);
                    let wq = QuantParams::from_range(wlo, whi);
                    let qweight: Vec<u8> = wmat.iter().map(|&v| wq.quantize(v)).collect();
                    let (olo, ohi) = step_ranges[t];
                    let out_params = QuantParams::from_range(olo, ohi);
                    steps.push(Step::QConv {
                        qweight: Storage::Owned(qweight),
                        lut: lut_cache.int8(&*lut_mult, wq, act),
                        bias: bias.clone(),
                        cout: *cout,
                        cin: *cin,
                        kh: *kh,
                        kw: *kw,
                        stride: *stride,
                        pad: *pad,
                        fuse_relu: *fuse_relu,
                        out: QOut::Codes(out_params),
                    });
                    act = out_params;
                }
                Step::Dense { wt, bias, in_features, out_features, fuse_relu, .. } => {
                    let wt = wt.as_slice();
                    let (wlo, whi) = QuantParams::observe(wt);
                    let wq = QuantParams::from_range(wlo, whi);
                    let qwt: Vec<u8> = wt.iter().map(|&v| wq.quantize(v)).collect();
                    let (olo, ohi) = step_ranges[t];
                    let out_params = QuantParams::from_range(olo, ohi);
                    steps.push(Step::QDense {
                        qwt: Storage::Owned(qwt),
                        lut: lut_cache.int8(&*lut_mult, act, wq),
                        bias: bias.clone(),
                        in_features: *in_features,
                        out_features: *out_features,
                        fuse_relu: *fuse_relu,
                        out: QOut::Codes(out_params),
                    });
                    act = out_params;
                }
                Step::MaxPool { window, stride } => {
                    steps.push(Step::QMaxPool { window: *window, stride: *stride });
                }
                Step::Relu => steps.push(Step::QRelu { zero_point: act.zero_point() }),
                Step::Flatten => steps.push(Step::Flatten),
                Step::BatchNorm { .. } | Step::QuantAct { .. } => return None,
                _ => unreachable!("f32 plans contain only f32 steps"),
            }
        }
        // The plan's logits are f32: a final conv/dense step emits them
        // directly from its accumulator; anything else gets an explicit
        // decode step.
        match steps.iter_mut().rev().find(|s| !matches!(s, Step::Flatten)) {
            Some(Step::QConv { out, .. }) | Some(Step::QDense { out, .. }) => *out = QOut::Float,
            _ => steps.push(Step::QDequantize { params: act }),
        }
        let last_write = steps.iter().rposition(|s| !matches!(s, Step::Flatten));
        Some(InferencePlan {
            multiplier,
            steps,
            last_write,
            precision: PlanPrecision::Int8,
            layout: Mutex::new(None),
            pool: Mutex::new(Vec::new()),
            workspace_allocs: AtomicU64::new(0),
        })
    }

    /// Compile `network` into an **int4-weight serving plan**: like
    /// [`InferencePlan::compile_quantized`], but each conv/dense layer's
    /// weights are additionally quantized to **16 codes** and the layer runs
    /// the in-register shuffle GEMM ([`da_arith::quantized::lut4_gemm`]) —
    /// unless the calibration batch measures too large an output gap
    /// against the int8 layer, in which case that layer alone keeps the
    /// int8 gather ([`INT4_FALLBACK_GAP`]; see
    /// [`InferencePlan::int4_layer_mix`] for the resulting split).
    ///
    /// The gap is measured layer-locally on calibration *codes*: both
    /// candidate layers consume the same upstream activations (produced by
    /// the layers actually chosen so far), so the decision reflects the
    /// plan that will really serve. Like the int8 plan, the result is
    /// deterministic and schedule-independent; it is bit-identical to the
    /// scalar int4 reference GEMM on every int4 layer and to the scalar
    /// int8 reference on every fallback layer.
    ///
    /// Returns `None` exactly when [`InferencePlan::compile_quantized`]
    /// would.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is not a non-empty batch of the shape the
    /// network serves.
    pub fn compile_quantized_int4(
        network: &Network,
        multiplier: Option<Arc<dyn Multiplier>>,
        calibration: &Tensor,
    ) -> Option<InferencePlan> {
        let f32_plan = InferencePlan::compile(network, multiplier.clone())?;
        if f32_plan
            .steps
            .iter()
            .any(|s| matches!(s, Step::BatchNorm { .. } | Step::QuantAct { .. }))
        {
            return None;
        }
        let (input_range, step_ranges) = f32_plan.observe_ranges(calibration);
        let lut_mult: Arc<dyn Multiplier> =
            multiplier.clone().unwrap_or_else(|| Arc::new(ExactMultiplier));
        let mut lut_cache = LutCache::default();

        let layout = f32_plan.layout_for(&calibration.shape()[1..]);
        let item_in: usize = layout.item_shape.iter().product();
        let ncal = calibration.shape()[0];
        let xd = calibration.data();

        let mut act = QuantParams::from_range(input_range.0, input_range.1);
        // Calibration activations as codes, `[ncal × current_len]`, advanced
        // through each *chosen* step so downstream gap measurements see the
        // codes the compiled plan will actually produce.
        let mut cal = vec![0u8; ncal * item_in];
        act.quantize_slice(&xd[..ncal * item_in], &mut cal);
        let mut next_cal: Vec<u8> = Vec::new();

        let mut steps = vec![Step::QuantizeInput { params: act }];
        for (t, step) in f32_plan.steps.iter().enumerate() {
            let shapes = &layout.resolved[t];
            let in_len: usize = shapes.in_shape.iter().product();
            let out_len: usize = shapes.out_shape.iter().product();
            match step {
                Step::Conv { weights, bias, cout, cin, kh, kw, stride, pad, fuse_relu } => {
                    let wmat: Vec<f32> = match weights {
                        ConvWeights::Raw(w) => w.as_slice().to_vec(),
                        ConvWeights::Prepared(p) => (0..p.rows())
                            .flat_map(|r| p.row(r).iter().map(|op| op.value()))
                            .collect(),
                    };
                    let k = cin * kh * kw;
                    let (wlo, whi) = QuantParams::observe(&wmat);
                    let wq = QuantParams::from_range(wlo, whi);
                    let qweight: Vec<u8> = wmat.iter().map(|&v| wq.quantize(v)).collect();
                    let w4 = QuantParams4::from_range(wlo, whi);
                    let q4: Vec<u8> = wmat.iter().map(|&v| w4.quantize(v)).collect();
                    let mut qweight_t = vec![0u8; k * cout];
                    for co in 0..*cout {
                        for kk in 0..k {
                            qweight_t[kk * cout + co] = q4[co * k + kk];
                        }
                    }
                    let lut8 = lut_cache.int8(&*lut_mult, wq, act);
                    let lut4 = lut_cache.int4(&*lut_mult, act, w4, Lut4Order::WeightsLeft);

                    // Gap measurement: both candidates over the calibration
                    // codes, compared post-bias pre-activation.
                    let (h, w) = (shapes.in_shape[1], shapes.in_shape[2]);
                    let (oh, ow) = (shapes.out_shape[1], shapes.out_shape[2]);
                    let p_total = oh * ow;
                    let pad_code = act.zero_point();
                    let mut g8 = vec![0u8; k * p_total];
                    let mut g4 = vec![0u8; p_total * k];
                    let mut all8 = vec![0.0f32; ncal * cout * p_total];
                    let mut all4 = vec![0.0f32; ncal * p_total * cout];
                    for i in 0..ncal {
                        let item = &cal[i * in_len..(i + 1) * in_len];
                        gather_patches_u8(
                            item, *cin, h, w, *kh, *kw, *stride, *pad, ow, 0, p_total, p_total, 0,
                            &mut g8, pad_code,
                        );
                        let acc8 = &mut all8[i * cout * p_total..(i + 1) * cout * p_total];
                        lut_gemm(&lut8, &qweight, *cout, k, &g8, p_total, acc8, p_total);
                        gather_patch_rows_u8(
                            item, *cin, h, w, *kh, *kw, *stride, *pad, ow, 0, p_total, &mut g4,
                            pad_code,
                        );
                        let acc4 = &mut all4[i * p_total * cout..(i + 1) * p_total * cout];
                        lut4_gemm(&lut4, &g4, p_total, k, &qweight_t, *cout, acc4, *cout);
                    }
                    let mut spread = (f32::INFINITY, f32::NEG_INFINITY);
                    let mut max_diff = 0.0f32;
                    for i in 0..ncal {
                        for co in 0..*cout {
                            for p in 0..p_total {
                                let y8 = all8[(i * cout + co) * p_total + p] + bias[co];
                                let y4 = all4[(i * p_total + p) * cout + co] + bias[co];
                                spread.0 = spread.0.min(y8);
                                spread.1 = spread.1.max(y8);
                                max_diff = max_diff.max((y4 - y8).abs());
                            }
                        }
                    }
                    let (olo, ohi) = step_ranges[t];
                    let out_params = QuantParams::from_range(olo, ohi);
                    let use_int4 = gap_accepts_int4(max_diff, spread);
                    // Advance calibration codes through the chosen layer.
                    next_cal.clear();
                    next_cal.resize(ncal * out_len, 0);
                    for i in 0..ncal {
                        for co in 0..*cout {
                            for p in 0..p_total {
                                let acc = if use_int4 {
                                    all4[(i * p_total + p) * cout + co]
                                } else {
                                    all8[(i * cout + co) * p_total + p]
                                };
                                let v = acc + bias[co];
                                let v = if *fuse_relu { v.max(0.0) } else { v };
                                next_cal[i * out_len + co * p_total + p] = out_params.quantize(v);
                            }
                        }
                    }
                    std::mem::swap(&mut cal, &mut next_cal);
                    if use_int4 {
                        steps.push(Step::QConv4 {
                            qweight_t: Storage::Owned(qweight_t),
                            lut: lut4,
                            bias: bias.clone(),
                            cout: *cout,
                            cin: *cin,
                            kh: *kh,
                            kw: *kw,
                            stride: *stride,
                            pad: *pad,
                            fuse_relu: *fuse_relu,
                            out: QOut::Codes(out_params),
                        });
                    } else {
                        steps.push(Step::QConv {
                            qweight: Storage::Owned(qweight),
                            lut: lut8,
                            bias: bias.clone(),
                            cout: *cout,
                            cin: *cin,
                            kh: *kh,
                            kw: *kw,
                            stride: *stride,
                            pad: *pad,
                            fuse_relu: *fuse_relu,
                            out: QOut::Codes(out_params),
                        });
                    }
                    act = out_params;
                }
                Step::Dense { wt, bias, in_features, out_features, fuse_relu, .. } => {
                    let wt = wt.as_slice();
                    let (inf, outf) = (*in_features, *out_features);
                    let (wlo, whi) = QuantParams::observe(wt);
                    let wq = QuantParams::from_range(wlo, whi);
                    let qwt: Vec<u8> = wt.iter().map(|&v| wq.quantize(v)).collect();
                    let w4 = QuantParams4::from_range(wlo, whi);
                    let qwt4: Vec<u8> = wt.iter().map(|&v| w4.quantize(v)).collect();
                    let lut8 = lut_cache.int8(&*lut_mult, act, wq);
                    let lut4 = lut_cache.int4(&*lut_mult, act, w4, Lut4Order::ActivationsLeft);

                    let mut all8 = vec![0.0f32; ncal * outf];
                    for i in 0..ncal {
                        lut_gemm(
                            &lut8,
                            &cal[i * inf..(i + 1) * inf],
                            1,
                            inf,
                            &qwt,
                            outf,
                            &mut all8[i * outf..(i + 1) * outf],
                            outf,
                        );
                    }
                    let mut all4 = vec![0.0f32; ncal * outf];
                    lut4_gemm(&lut4, &cal[..ncal * inf], ncal, inf, &qwt4, outf, &mut all4, outf);
                    let mut spread = (f32::INFINITY, f32::NEG_INFINITY);
                    let mut max_diff = 0.0f32;
                    for i in 0..ncal * outf {
                        let b = bias[i % outf];
                        let (y8, y4) = (all8[i] + b, all4[i] + b);
                        spread.0 = spread.0.min(y8);
                        spread.1 = spread.1.max(y8);
                        max_diff = max_diff.max((y4 - y8).abs());
                    }
                    let (olo, ohi) = step_ranges[t];
                    let out_params = QuantParams::from_range(olo, ohi);
                    let use_int4 = gap_accepts_int4(max_diff, spread);
                    next_cal.clear();
                    next_cal.resize(ncal * out_len, 0);
                    for i in 0..ncal * outf {
                        let acc = if use_int4 { all4[i] } else { all8[i] };
                        let v = acc + bias[i % outf];
                        let v = if *fuse_relu { v.max(0.0) } else { v };
                        next_cal[i] = out_params.quantize(v);
                    }
                    std::mem::swap(&mut cal, &mut next_cal);
                    if use_int4 {
                        steps.push(Step::QDense4 {
                            qwt: Storage::Owned(qwt4),
                            lut: lut4,
                            bias: bias.clone(),
                            in_features: inf,
                            out_features: outf,
                            fuse_relu: *fuse_relu,
                            out: QOut::Codes(out_params),
                        });
                    } else {
                        steps.push(Step::QDense {
                            qwt: Storage::Owned(qwt),
                            lut: lut8,
                            bias: bias.clone(),
                            in_features: inf,
                            out_features: outf,
                            fuse_relu: *fuse_relu,
                            out: QOut::Codes(out_params),
                        });
                    }
                    act = out_params;
                }
                Step::MaxPool { window, stride } => {
                    let (c, h, w) = (shapes.in_shape[0], shapes.in_shape[1], shapes.in_shape[2]);
                    let (oh, ow) = (shapes.out_shape[1], shapes.out_shape[2]);
                    next_cal.clear();
                    next_cal.resize(ncal * out_len, 0);
                    for i in 0..ncal {
                        let src = &cal[i * in_len..(i + 1) * in_len];
                        let dst = &mut next_cal[i * out_len..(i + 1) * out_len];
                        for ci in 0..c {
                            let plane = &src[ci * h * w..(ci + 1) * h * w];
                            for oy in 0..oh {
                                for ox in 0..ow {
                                    let mut best = 0u8;
                                    for ky in 0..*window {
                                        for kx in 0..*window {
                                            let v =
                                                plane[(oy * stride + ky) * w + (ox * stride + kx)];
                                            best = best.max(v);
                                        }
                                    }
                                    dst[(ci * oh + oy) * ow + ox] = best;
                                }
                            }
                        }
                    }
                    std::mem::swap(&mut cal, &mut next_cal);
                    steps.push(Step::QMaxPool { window: *window, stride: *stride });
                }
                Step::Relu => {
                    let zp = act.zero_point();
                    for v in cal.iter_mut() {
                        *v = (*v).max(zp);
                    }
                    steps.push(Step::QRelu { zero_point: zp });
                }
                Step::Flatten => steps.push(Step::Flatten),
                Step::BatchNorm { .. } | Step::QuantAct { .. } => return None,
                _ => unreachable!("f32 plans contain only f32 steps"),
            }
        }
        match steps.iter_mut().rev().find(|s| !matches!(s, Step::Flatten)) {
            Some(Step::QConv { out, .. })
            | Some(Step::QDense { out, .. })
            | Some(Step::QConv4 { out, .. })
            | Some(Step::QDense4 { out, .. }) => *out = QOut::Float,
            _ => steps.push(Step::QDequantize { params: act }),
        }
        let last_write = steps.iter().rposition(|s| !matches!(s, Step::Flatten));
        Some(InferencePlan {
            multiplier,
            steps,
            last_write,
            precision: PlanPrecision::Int4Weights,
            layout: Mutex::new(None),
            pool: Mutex::new(Vec::new()),
            workspace_allocs: AtomicU64::new(0),
        })
    }

    /// Run `x` through the f32 steps once, recording the `(min, max)` of the
    /// network input and of every step's output over the whole batch — the
    /// calibration pass behind [`InferencePlan::compile_quantized`].
    fn observe_ranges(&self, x: &Tensor) -> ((f32, f32), Vec<(f32, f32)>) {
        assert!(x.shape().len() >= 2, "calibration expects a batched [N, ...] input");
        let n = x.shape()[0];
        assert!(n > 0, "calibration batch must be non-empty");
        let layout = self.layout_for(&x.shape()[1..]);
        let item_in: usize = layout.item_shape.iter().product();
        let xd = x.data();
        let input_range = QuantParams::observe(xd);

        let mut ranges = vec![(f32::INFINITY, f32::NEG_INFINITY); self.steps.len()];
        let mut state = self.worker_state(&layout, 1);
        let mut cur: Vec<f32> = Vec::new();
        let mut next: Vec<f32> = Vec::new();
        for i in 0..n {
            cur.clear();
            cur.extend_from_slice(&xd[i * item_in..(i + 1) * item_in]);
            for (t, step) in self.steps.iter().enumerate() {
                if matches!(step, Step::Flatten) {
                    ranges[t] = ranges[t.saturating_sub(1)];
                    continue;
                }
                let shapes = &layout.resolved[t];
                let out_len: usize = shapes.out_shape.iter().product();
                next.clear();
                next.resize(out_len, 0.0);
                exec_step(
                    step,
                    shapes,
                    &cur,
                    &mut next,
                    &mut state.ws.gather,
                    state.kernel.as_deref_mut(),
                );
                let (lo, hi) = QuantParams::observe(&next);
                ranges[t].0 = ranges[t].0.min(lo);
                ranges[t].1 = ranges[t].1.max(hi);
                std::mem::swap(&mut cur, &mut next);
            }
        }
        (input_range, ranges)
    }

    /// The numeric mode this plan serves in.
    pub fn precision(&self) -> PlanPrecision {
        self.precision
    }

    /// The plan's externally observable serving contract — input constraint
    /// of the first weight-bearing step, logit width of the last, and the
    /// numeric family. Used by the hot-reload shape handshake to refuse a
    /// replacement that would silently change what callers get back.
    pub fn interface(&self) -> PlanInterface {
        let mut input = None;
        let mut output_features = None;
        for s in &self.steps {
            match s {
                Step::Conv { cin, .. } | Step::QConv { cin, .. } | Step::QConv4 { cin, .. } => {
                    if input.is_none() {
                        input = Some(PlanInput::Conv { cin: *cin });
                    }
                }
                Step::Dense { in_features, out_features, .. }
                | Step::QDense { in_features, out_features, .. }
                | Step::QDense4 { in_features, out_features, .. } => {
                    if input.is_none() {
                        input = Some(PlanInput::Dense { features: *in_features });
                    }
                    output_features = Some(*out_features);
                }
                _ => {}
            }
        }
        let family = match self.precision {
            PlanPrecision::F32 => PrecisionFamily::Float,
            PlanPrecision::Int8 | PlanPrecision::Int4Weights => PrecisionFamily::Quantized,
        };
        PlanInterface { input, output_features, family }
    }

    /// How [`InferencePlan::compile_quantized_int4`] split the GEMM layers:
    /// `(int4 shuffle layers, int8 gather fallback layers)`. Both counts are
    /// zero for f32 plans; the second is the full GEMM count for plain int8
    /// plans.
    pub fn int4_layer_mix(&self) -> (usize, usize) {
        let (mut int4, mut int8) = (0usize, 0usize);
        for s in &self.steps {
            match s {
                Step::QConv4 { .. } | Step::QDense4 { .. } => int4 += 1,
                Step::QConv { .. } | Step::QDense { .. } => int8 += 1,
                _ => {}
            }
        }
        (int4, int8)
    }

    /// Product-table sharing across the plan's GEMM steps:
    /// `(LUT-bearing steps, distinct table allocations)`. The second number
    /// drops below the first when layers with identical quantizer pairs
    /// share one `Arc`'d table (see [`InferencePlan::compile_quantized`]).
    pub fn product_lut_sharing(&self) -> (usize, usize) {
        let mut steps = 0usize;
        let mut seen8: Vec<*const ProductLut> = Vec::new();
        let mut seen4: Vec<*const ProductLut4> = Vec::new();
        for s in &self.steps {
            match s {
                Step::QConv { lut, .. } | Step::QDense { lut, .. } => {
                    steps += 1;
                    let p = Arc::as_ptr(lut);
                    if !seen8.contains(&p) {
                        seen8.push(p);
                    }
                }
                Step::QConv4 { lut, .. } | Step::QDense4 { lut, .. } => {
                    steps += 1;
                    let p = Arc::as_ptr(lut);
                    if !seen4.contains(&p) {
                        seen4.push(p);
                    }
                }
                _ => {}
            }
        }
        (steps, seen8.len() + seen4.len())
    }

    /// The multiplier the plan was compiled against.
    pub fn multiplier(&self) -> Option<&Arc<dyn Multiplier>> {
        self.multiplier.as_ref()
    }

    /// Number of executable steps (fused layers count once; eval-mode no-ops
    /// are dropped).
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// How many workspace-buffer allocations (or growths) the plan has
    /// performed. Steady-state serving with a fixed input shape stops
    /// growing this counter after the first call — asserted by the
    /// equivalence tests.
    pub fn workspace_allocations(&self) -> u64 {
        self.workspace_allocs.load(Ordering::Relaxed)
    }

    /// Inference logits for a `[N, ...]` batch — bit-identical to
    /// `Network::forward(Mode::Eval)` on the network the plan was compiled
    /// from (with the same multiplier).
    ///
    /// # Panics
    ///
    /// Panics on rank or shape mismatches, with the same messages as the
    /// per-layer forward pass.
    pub fn predict_batch(&self, x: &Tensor) -> Tensor {
        assert!(x.shape().len() >= 2, "predict_batch expects a batched [N, ...] input");
        let n = x.shape()[0];
        let layout = self.layout_for(&x.shape()[1..]);
        let item_in: usize = layout.item_shape.iter().product();
        let out_len = layout.out_len;
        let mut out = vec![0.0f32; n * out_len];
        let xd = x.data();

        let parallel = n > 1 && n * layout.item_macs >= PAR_MIN_MACS;
        if matches!(self.precision, PlanPrecision::Int8 | PlanPrecision::Int4Weights) {
            // Layer-major batched execution: each worker takes a contiguous
            // *group* of items and runs every step for the whole group —
            // product tables stay hot across items and small conv planes
            // share wide tiles. Per-element accumulation order is
            // group-independent, so results stay bit-identical to
            // single-item runs (conformance-tested).
            let threads = if parallel {
                std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1)
            } else {
                1
            };
            // `max(1)` is defensive: `Tensor` rejects zero dimensions, so
            // `n == 0` cannot reach here today, but a zero chunk size
            // would panic in the parallel splitter if it ever did.
            let group = n.div_ceil(threads).max(1);
            par_map_chunks_with(
                &mut out,
                group * out_len,
                || self.worker_state(&layout, group),
                |state, gi, piece| {
                    let items = piece.len() / out_len;
                    let xs = &xd[gi * group * item_in..][..items * item_in];
                    self.run_batch_q(&layout, state, xs, items, piece);
                },
            );
        } else {
            let run = |state: &mut WorkerState<'_>, i: usize, piece: &mut [f32]| {
                self.run_item(&layout, state, &xd[i * item_in..(i + 1) * item_in], piece);
            };
            if parallel {
                par_map_chunks_with(&mut out, out_len, || self.worker_state(&layout, 1), run);
            } else {
                let mut state = self.worker_state(&layout, 1);
                for (i, piece) in out.chunks_mut(out_len).enumerate() {
                    run(&mut state, i, piece);
                }
            }
        }

        let mut shape = vec![n];
        shape.extend_from_slice(&layout.out_shape);
        Tensor::from_vec(out, &shape)
    }

    /// Predicted class per batch item (the shared
    /// [`crate::loss::argmax_logits`] tie behavior: last maximum wins).
    pub fn predict(&self, x: &Tensor) -> Vec<usize> {
        let logits = self.predict_batch(x);
        let k: usize = logits.shape()[1..].iter().product();
        logits.data().chunks(k).map(crate::loss::argmax_logits).collect()
    }

    /// Check out a workspace sized for `group`-item batches (reusing pooled
    /// buffers) and build the per-worker kernel (quantized plans gather
    /// from their LUTs instead of running batch kernels, so they skip the
    /// kernel).
    fn worker_state(&self, layout: &Layout, group: usize) -> WorkerState<'_> {
        let mut ws = self.pool.lock().expect("workspace pool lock").pop().unwrap_or_default();
        ws.ensure(layout, group, &self.workspace_allocs);
        let kernel = match self.precision {
            PlanPrecision::F32 => self.multiplier.as_ref().map(|m| m.batch_kernel()),
            PlanPrecision::Int8 | PlanPrecision::Int4Weights => None,
        };
        WorkerState { pool: &self.pool, ws, kernel }
    }

    /// The cached layout for `item_shape`, computing it on first use (or
    /// when the serving shape changes).
    fn layout_for(&self, item_shape: &[usize]) -> Arc<Layout> {
        {
            let guard = self.layout.lock().expect("layout lock");
            if let Some(layout) = &*guard {
                if layout.item_shape == item_shape {
                    return layout.clone();
                }
            }
        }
        let layout = Arc::new(self.compute_layout(item_shape));
        *self.layout.lock().expect("layout lock") = Some(layout.clone());
        layout
    }

    /// Shape inference: walk the steps once for a per-item input shape,
    /// validating like the per-layer forward would and sizing the arena.
    fn compute_layout(&self, item_shape: &[usize]) -> Layout {
        let mut shape = item_shape.to_vec();
        let mut resolved = Vec::with_capacity(self.steps.len());
        let mut buf_len = 0usize;
        let mut gather_len = 0usize;
        let mut qbuf_len = 0usize;
        let mut qgather_len = 0usize;
        let mut facc_len = 0usize;
        let mut dense_out_max = 0usize;
        let mut item_macs = 0usize;
        for step in &self.steps {
            let in_shape = shape.clone();
            let out_shape = match step {
                Step::Conv { cout, cin, kh, kw, stride, pad, .. }
                | Step::QConv { cout, cin, kh, kw, stride, pad, .. }
                | Step::QConv4 { cout, cin, kh, kw, stride, pad, .. } => {
                    assert_eq!(in_shape.len(), 3, "Conv2d expects [N, C, H, W]");
                    assert_eq!(in_shape[0], *cin, "input channel mismatch");
                    let geom = ConvGeometry {
                        input: (in_shape[1], in_shape[2]),
                        kernel: (*kh, *kw),
                        stride: *stride,
                        pad: *pad,
                    };
                    let (oh, ow) = geom.output();
                    let k = cin * kh * kw;
                    if matches!(step, Step::QConv { .. }) {
                        // Small planes share one tile across an item group;
                        // large planes split into balanced tiles. Either
                        // way columns stay under the QCONV_TILE cap.
                        let p_total = oh * ow;
                        let tile_cap = if p_total >= QCONV_TILE {
                            qconv_tile_width(p_total)
                        } else {
                            (QCONV_TILE / p_total) * p_total
                        };
                        qgather_len = qgather_len.max(k * tile_cap);
                        facc_len = facc_len.max(cout * tile_cap);
                    } else if matches!(step, Step::QConv4 { .. }) {
                        // Transposed tiling: pixel rows × tap columns, with
                        // the accumulator `cout` wide per pixel row.
                        let p_tile = QCONV_TILE.min(oh * ow).max(1);
                        qgather_len = qgather_len.max(p_tile * k);
                        facc_len = facc_len.max(p_tile * cout);
                    } else {
                        gather_len = gather_len.max(k * CONV_TILE.min(oh * ow));
                    }
                    item_macs += cout * k * oh * ow;
                    vec![*cout, oh, ow]
                }
                Step::Dense { in_features, out_features, .. }
                | Step::QDense { in_features, out_features, .. }
                | Step::QDense4 { in_features, out_features, .. } => {
                    assert_eq!(in_shape.len(), 1, "Dense expects [N, In]");
                    assert_eq!(in_shape[0], *in_features, "feature mismatch");
                    if matches!(step, Step::QDense { .. } | Step::QDense4 { .. }) {
                        dense_out_max = dense_out_max.max(*out_features);
                    }
                    item_macs += in_features * out_features;
                    vec![*out_features]
                }
                Step::MaxPool { window, stride } | Step::QMaxPool { window, stride } => {
                    assert_eq!(in_shape.len(), 3, "MaxPool2d expects [N, C, H, W]");
                    let geom = ConvGeometry {
                        input: (in_shape[1], in_shape[2]),
                        kernel: (*window, *window),
                        stride: *stride,
                        pad: 0,
                    };
                    let (oh, ow) = geom.output();
                    vec![in_shape[0], oh, ow]
                }
                Step::Flatten => vec![in_shape.iter().product()],
                Step::Relu
                | Step::QuantAct { .. }
                | Step::QuantizeInput { .. }
                | Step::QRelu { .. }
                | Step::QDequantize { .. } => in_shape.clone(),
                Step::BatchNorm { gamma, .. } => {
                    assert!(
                        in_shape.len() == 1 || in_shape.len() == 3,
                        "BatchNorm expects [N, F] or [N, C, H, W]"
                    );
                    assert_eq!(in_shape[0], gamma.len(), "channel mismatch");
                    in_shape.clone()
                }
            };
            if !matches!(step, Step::Flatten) {
                let out_len: usize = out_shape.iter().product();
                if matches!(self.precision, PlanPrecision::Int8 | PlanPrecision::Int4Weights) {
                    // Every quantized intermediate lives in the u8 ping-pong
                    // buffers (the final f32 logits land in the caller's
                    // output row directly).
                    qbuf_len = qbuf_len.max(out_len);
                } else {
                    buf_len = buf_len.max(out_len);
                }
            }
            shape = out_shape.clone();
            resolved.push(ResolvedShape { in_shape, out_shape });
        }
        Layout {
            item_shape: item_shape.to_vec(),
            resolved,
            out_len: shape.iter().product(),
            out_shape: shape,
            buf_len,
            gather_len,
            qbuf_len,
            qgather_len,
            facc_len,
            dense_out_max,
            item_macs,
        }
    }

    /// Run every step for one item, ping-ponging activations through the
    /// workspace; the final writing step lands directly in `out_row`.
    fn run_item(
        &self,
        layout: &Layout,
        state: &mut WorkerState<'_>,
        input: &[f32],
        out_row: &mut [f32],
    ) {
        debug_assert_eq!(self.precision, PlanPrecision::F32, "int8 plans run run_batch_q");
        let Some(last_write) = self.last_write else {
            // Shape-only plan (or no layers at all): logits are the input.
            out_row.copy_from_slice(input);
            return;
        };
        let mut kernel = state.kernel.as_deref_mut();
        let Workspace { a, b, gather, .. } = &mut state.ws;
        let mut src_slot = SrcSlot::Input;
        for (t, step) in self.steps.iter().enumerate() {
            if matches!(step, Step::Flatten) {
                continue;
            }
            let shapes = &layout.resolved[t];
            let in_len: usize = shapes.in_shape.iter().product();
            let out_len: usize = shapes.out_shape.iter().product();
            let (src, dst): (&[f32], &mut [f32]) = match (src_slot, t == last_write) {
                (SrcSlot::Input, true) => (&input[..in_len], &mut out_row[..out_len]),
                (SrcSlot::Input, false) => (&input[..in_len], &mut a[..out_len]),
                (SrcSlot::A, true) => (&a[..in_len], &mut out_row[..out_len]),
                (SrcSlot::A, false) => (&a[..in_len], &mut b[..out_len]),
                (SrcSlot::B, true) => (&b[..in_len], &mut out_row[..out_len]),
                (SrcSlot::B, false) => (&b[..in_len], &mut a[..out_len]),
            };
            exec_step(step, shapes, src, dst, gather, kernel.as_deref_mut());
            if t == last_write {
                return;
            }
            src_slot = match src_slot {
                SrcSlot::Input | SrcSlot::B => SrcSlot::A,
                SrcSlot::A => SrcSlot::B,
            };
        }
    }

    /// The int8 executor, **layer-major over an item group**: quantize the
    /// group's inputs once, ping-pong activation *codes* through the `u8`
    /// workspace buffers, and run every conv/dense as a LUT-gather GEMM
    /// with fused bias/ReLU/requantize — all `n` items per step before the
    /// next step, so each layer's product table is swept while hot, small
    /// conv planes share one wide tile, and dense layers run as true
    /// multi-row GEMMs. Per output element the accumulation order is the
    /// same ascending-`k` sequence regardless of grouping, so logits are
    /// bit-identical to a single-item run (the serving contract).
    fn run_batch_q(
        &self,
        layout: &Layout,
        state: &mut WorkerState<'_>,
        xs: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let last_write = self.last_write.expect("quantized plans always write");
        let Workspace { qa, qb, qgather, facc, .. } = &mut state.ws;
        // `true` while the current codes live in `qa` (QuantizeInput's
        // destination), flipping after every writing step.
        let mut src_is_a = true;
        for (t, step) in self.steps.iter().enumerate() {
            if matches!(step, Step::Flatten) {
                continue;
            }
            let shapes = &layout.resolved[t];
            let in_len: usize = shapes.in_shape.iter().product();
            let out_len: usize = shapes.out_shape.iter().product();
            let to_out = t == last_write;
            if let Step::QuantizeInput { params } = step {
                params.quantize_slice(&xs[..n * in_len], &mut qa[..n * out_len]);
                src_is_a = true;
                continue;
            }
            let (src, dst): (&[u8], &mut [u8]) = if src_is_a {
                (&qa[..n * in_len], &mut qb[..])
            } else {
                (&qb[..n * in_len], &mut qa[..])
            };
            match step {
                Step::QConv {
                    qweight,
                    lut,
                    bias,
                    cout,
                    cin,
                    kh,
                    kw,
                    stride,
                    pad,
                    fuse_relu,
                    out: qout,
                } => {
                    let (h, w) = (shapes.in_shape[1], shapes.in_shape[2]);
                    let (oh, ow) = (shapes.out_shape[1], shapes.out_shape[2]);
                    let k = cin * kh * kw;
                    let p_total = oh * ow;
                    // Padded taps gather the activation zero point — the
                    // code for exactly 0.0, matching the f32 path's zeros.
                    let pad_code = lut.b_params().zero_point();
                    // Small output planes pack several items into one tile
                    // so the gather kernels amortize table traffic.
                    let group = if p_total >= QCONV_TILE { 1 } else { QCONV_TILE / p_total };
                    let tile_width = qconv_tile_width(p_total);
                    let mut i0 = 0usize;
                    while i0 < n {
                        let g = group.min(n - i0);
                        let tile_cols = g * p_total;
                        for p0 in (0..p_total).step_by(tile_width) {
                            let cols = tile_width.min(p_total - p0);
                            let tile = if g == 1 { cols } else { tile_cols };
                            for li in 0..g {
                                gather_patches_u8(
                                    &src[(i0 + li) * in_len..(i0 + li + 1) * in_len],
                                    *cin,
                                    h,
                                    w,
                                    *kh,
                                    *kw,
                                    *stride,
                                    *pad,
                                    ow,
                                    p0,
                                    cols,
                                    tile,
                                    li * p_total,
                                    qgather,
                                    pad_code,
                                );
                            }
                            let acc = &mut facc[..cout * tile];
                            acc.fill(0.0);
                            lut_gemm(
                                lut,
                                qweight.as_slice(),
                                *cout,
                                k,
                                &qgather[..k * tile],
                                tile,
                                acc,
                                tile,
                            );
                            match qout {
                                QOut::Codes(params) => {
                                    debug_assert!(!to_out, "code output cannot be the plan output");
                                    for li in 0..g {
                                        let dst_item = (i0 + li) * out_len;
                                        for co in 0..*cout {
                                            requantize_bias_act(
                                                &acc[co * tile + li * p_total..][..cols],
                                                bias[co],
                                                *fuse_relu,
                                                params,
                                                &mut dst[dst_item + co * p_total + p0..][..cols],
                                            );
                                        }
                                    }
                                }
                                QOut::Float => {
                                    debug_assert!(to_out, "float output is the plan output");
                                    for li in 0..g {
                                        let out_item = (i0 + li) * out_len;
                                        for co in 0..*cout {
                                            let acc_row = &acc[co * tile + li * p_total..][..cols];
                                            let orow =
                                                &mut out[out_item + co * p_total + p0..][..cols];
                                            for (o, &v) in orow.iter_mut().zip(acc_row) {
                                                let v = v + bias[co];
                                                *o = if *fuse_relu { v.max(0.0) } else { v };
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        i0 += g;
                    }
                }
                Step::QDense {
                    qwt,
                    lut,
                    bias,
                    in_features,
                    out_features,
                    fuse_relu,
                    out: qout,
                } => {
                    // Per-item single-row GEMMs: the single-row path skips
                    // zero-point activation codes (ubiquitous after ReLU),
                    // which beats a multi-row sweep — the weight-code
                    // matrix stays hot across the item group either way.
                    let outf = *out_features;
                    let acc = &mut facc[..n * outf];
                    acc.fill(0.0);
                    for i in 0..n {
                        lut_gemm(
                            lut,
                            &src[i * in_features..(i + 1) * in_features],
                            1,
                            *in_features,
                            qwt.as_slice(),
                            outf,
                            &mut acc[i * outf..(i + 1) * outf],
                            outf,
                        );
                    }
                    match qout {
                        QOut::Codes(params) => {
                            debug_assert!(!to_out, "code output cannot be the plan output");
                            for i in 0..n {
                                for (j, &b) in bias.iter().enumerate() {
                                    let v = acc[i * outf + j] + b;
                                    let v = if *fuse_relu { v.max(0.0) } else { v };
                                    dst[i * out_len + j] = params.quantize(v);
                                }
                            }
                        }
                        QOut::Float => {
                            debug_assert!(to_out, "float output is the plan output");
                            for i in 0..n {
                                for (j, &b) in bias.iter().enumerate() {
                                    let v = acc[i * outf + j] + b;
                                    out[i * out_len + j] = if *fuse_relu { v.max(0.0) } else { v };
                                }
                            }
                        }
                    }
                }
                Step::QConv4 {
                    qweight_t,
                    lut,
                    bias,
                    cout,
                    cin,
                    kh,
                    kw,
                    stride,
                    pad,
                    fuse_relu,
                    out: qout,
                } => {
                    // Transposed execution: pixel rows × tap columns against
                    // `[k, Cout]` weight codes, so the 4-bit codes vary along
                    // the shuffle axis. Per output element accumulation is
                    // the same ascending-`k` order as the int8 path, and the
                    // tiling is per item, so grouping cannot change bits.
                    let (h, w) = (shapes.in_shape[1], shapes.in_shape[2]);
                    let (oh, ow) = (shapes.out_shape[1], shapes.out_shape[2]);
                    let k = cin * kh * kw;
                    let p_total = oh * ow;
                    let pad_code = lut.act_params().zero_point();
                    for item in 0..n {
                        let src_item = &src[item * in_len..(item + 1) * in_len];
                        for p0 in (0..p_total).step_by(QCONV_TILE) {
                            let prows = QCONV_TILE.min(p_total - p0);
                            gather_patch_rows_u8(
                                src_item, *cin, h, w, *kh, *kw, *stride, *pad, ow, p0, prows,
                                qgather, pad_code,
                            );
                            let acc = &mut facc[..prows * cout];
                            acc.fill(0.0);
                            lut4_gemm(
                                lut,
                                &qgather[..prows * k],
                                prows,
                                k,
                                qweight_t.as_slice(),
                                *cout,
                                acc,
                                *cout,
                            );
                            match qout {
                                QOut::Codes(params) => {
                                    debug_assert!(!to_out, "code output cannot be the plan output");
                                    let dst_item = item * out_len;
                                    for (pi, arow) in acc.chunks_exact(*cout).enumerate() {
                                        let p = p0 + pi;
                                        for (co, &v) in arow.iter().enumerate() {
                                            let v = v + bias[co];
                                            let v = if *fuse_relu { v.max(0.0) } else { v };
                                            dst[dst_item + co * p_total + p] = params.quantize(v);
                                        }
                                    }
                                }
                                QOut::Float => {
                                    debug_assert!(to_out, "float output is the plan output");
                                    let out_item = item * out_len;
                                    for (pi, arow) in acc.chunks_exact(*cout).enumerate() {
                                        let p = p0 + pi;
                                        for (co, &v) in arow.iter().enumerate() {
                                            let v = v + bias[co];
                                            out[out_item + co * p_total + p] =
                                                if *fuse_relu { v.max(0.0) } else { v };
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                Step::QDense4 {
                    qwt,
                    lut,
                    bias,
                    in_features,
                    out_features,
                    fuse_relu,
                    out: qout,
                } => {
                    // One true multi-row shuffle GEMM over the whole item
                    // group — rows are independent (each owns its
                    // accumulators and its zero-code skip), so grouping is
                    // bit-neutral here too.
                    let outf = *out_features;
                    let acc = &mut facc[..n * outf];
                    acc.fill(0.0);
                    lut4_gemm(
                        lut,
                        &src[..n * in_features],
                        n,
                        *in_features,
                        qwt.as_slice(),
                        outf,
                        acc,
                        outf,
                    );
                    match qout {
                        QOut::Codes(params) => {
                            debug_assert!(!to_out, "code output cannot be the plan output");
                            for i in 0..n {
                                for (j, &b) in bias.iter().enumerate() {
                                    let v = acc[i * outf + j] + b;
                                    let v = if *fuse_relu { v.max(0.0) } else { v };
                                    dst[i * out_len + j] = params.quantize(v);
                                }
                            }
                        }
                        QOut::Float => {
                            debug_assert!(to_out, "float output is the plan output");
                            for i in 0..n {
                                for (j, &b) in bias.iter().enumerate() {
                                    let v = acc[i * outf + j] + b;
                                    out[i * out_len + j] = if *fuse_relu { v.max(0.0) } else { v };
                                }
                            }
                        }
                    }
                }
                Step::QMaxPool { window, stride } => {
                    let (c, h, w) = (shapes.in_shape[0], shapes.in_shape[1], shapes.in_shape[2]);
                    let (oh, ow) = (shapes.out_shape[1], shapes.out_shape[2]);
                    for item in 0..n {
                        let src_item = &src[item * in_len..(item + 1) * in_len];
                        let dst_item = &mut dst[item * out_len..(item + 1) * out_len];
                        if *window == 2 && *stride == 2 {
                            // The ubiquitous 2×2/2 case as slice max-pairs
                            // (vectorizes to packed u8 max).
                            for ci in 0..c {
                                let plane = &src_item[ci * h * w..(ci + 1) * h * w];
                                for oy in 0..oh {
                                    let r0 = &plane[2 * oy * w..2 * oy * w + 2 * ow];
                                    let r1 = &plane[(2 * oy + 1) * w..(2 * oy + 1) * w + 2 * ow];
                                    let orow = &mut dst_item
                                        [(ci * oh + oy) * ow..(ci * oh + oy) * ow + ow];
                                    for ((o, p0), p1) in orow
                                        .iter_mut()
                                        .zip(r0.chunks_exact(2))
                                        .zip(r1.chunks_exact(2))
                                    {
                                        *o = p0[0].max(p0[1]).max(p1[0]).max(p1[1]);
                                    }
                                }
                            }
                        } else {
                            for ci in 0..c {
                                let plane = &src_item[ci * h * w..(ci + 1) * h * w];
                                for oy in 0..oh {
                                    for ox in 0..ow {
                                        let mut best = 0u8;
                                        for ky in 0..*window {
                                            for kx in 0..*window {
                                                let v = plane
                                                    [(oy * stride + ky) * w + (ox * stride + kx)];
                                                if v > best {
                                                    best = v;
                                                }
                                            }
                                        }
                                        dst_item[(ci * oh + oy) * ow + ox] = best;
                                    }
                                }
                            }
                        }
                    }
                }
                Step::QRelu { zero_point } => {
                    for (o, &v) in dst[..n * out_len].iter_mut().zip(&src[..n * in_len]) {
                        *o = v.max(*zero_point);
                    }
                }
                Step::QDequantize { params } => {
                    debug_assert!(to_out, "decode is always the plan output");
                    params.dequantize_slice(&src[..n * in_len], &mut out[..n * out_len]);
                }
                _ => unreachable!("int8 plans contain only quantized steps"),
            }
            if to_out {
                return;
            }
            src_is_a = !src_is_a;
        }
    }
}

impl std::fmt::Debug for InferencePlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferencePlan")
            .field("steps", &self.steps.len())
            .field("multiplier", &self.multiplier.as_ref().map(|m| m.name()).unwrap_or("native"))
            .field("precision", &self.precision)
            .finish()
    }
}

/// Whether a measured int4-vs-int8 calibration gap is acceptable: the max
/// absolute output difference, normalized by the int8 output spread, must
/// stay at or below [`INT4_FALLBACK_GAP`]. A degenerate (empty or constant)
/// int8 output accepts int4 only when the outputs agree exactly.
fn gap_accepts_int4(max_diff: f32, spread: (f32, f32)) -> bool {
    let width = spread.1 - spread.0;
    // A NaN width (NaN calibration outputs) is degenerate too.
    if width <= 0.0 || width.is_nan() {
        return max_diff == 0.0;
    }
    max_diff / width <= INT4_FALLBACK_GAP
}

/// Whether the plan's multiplier and a layer's installed multiplier agree.
///
/// Multipliers are compared by [`Multiplier::name`], the stable identifier
/// the crate documents for cache keys — implementations are deterministic,
/// so same name ⇒ same datapath.
fn same_multiplier(
    plan: &Option<Arc<dyn Multiplier>>,
    layer: &Option<Arc<dyn Multiplier>>,
) -> bool {
    match (plan, layer) {
        (None, None) => true,
        (Some(a), Some(b)) => a.name() == b.name(),
        _ => false,
    }
}

/// Execute one compiled step from `src` into `dst`.
fn exec_step<'k>(
    step: &Step,
    shapes: &ResolvedShape,
    src: &[f32],
    dst: &mut [f32],
    gather: &mut [f32],
    kernel: Option<&mut (dyn BatchKernel + Send + 'k)>,
) {
    match step {
        Step::Conv { weights, bias, cout, cin, kh, kw, stride, pad, fuse_relu } => {
            let (h, w) = (shapes.in_shape[1], shapes.in_shape[2]);
            let (oh, ow) = (shapes.out_shape[1], shapes.out_shape[2]);
            let k = cin * kh * kw;
            let p_total = oh * ow;
            let mut kernel = kernel;
            // One covering row class for every patch tile of this step,
            // derived from the input plane (patch rows only ever contain
            // plane values plus padding zeros): removes all per-tile
            // classification scans from the serving hot path. The scan
            // granularity is the kernel's own (`classify_rhs`).
            let plane_class = kernel.as_ref().map(|kern| {
                let plane = kern.classify_rhs(src);
                if *pad > 0 && plane == RowClass::Normal {
                    RowClass::Zeros
                } else {
                    plane
                }
            });
            for p0 in (0..p_total).step_by(CONV_TILE) {
                let tile = CONV_TILE.min(p_total - p0);
                gather_patches(src, *cin, h, w, *kh, *kw, *stride, *pad, ow, p0, tile, gather);
                for co in 0..*cout {
                    dst[co * p_total + p0..co * p_total + p0 + tile].fill(0.0);
                }
                // Compile stores prepared weights iff the plan has a
                // multiplier, which is also the only case with a kernel.
                match (kernel.as_deref_mut(), weights) {
                    (Some(kern), ConvWeights::Prepared(prep)) => {
                        // Approximate path: the whole weight block sweeps
                        // the shared patch tile in one fused kernel call —
                        // per element `k` ascending, the batched GEMM's
                        // accumulation order.
                        let class = plane_class.expect("kernel implies class");
                        let gb = &gather[..k * tile];
                        kern.gemm_tile_classed(prep, gb, tile, class, &mut dst[p0..], p_total);
                    }
                    (None, ConvWeights::Raw(wmat)) => {
                        let wmat = wmat.as_slice();
                        // Exact path: mirror `da_tensor::ops::matmul`,
                        // including its zero-weight skip.
                        for co in 0..*cout {
                            let acc = &mut dst[co * p_total + p0..co * p_total + p0 + tile];
                            for (ki, &av) in wmat[co * k..(co + 1) * k].iter().enumerate() {
                                if av == 0.0 {
                                    continue;
                                }
                                let g = &gather[ki * tile..(ki + 1) * tile];
                                for (o, &gv) in acc.iter_mut().zip(g) {
                                    *o += av * gv;
                                }
                            }
                        }
                    }
                    _ => unreachable!("conv weight form always matches the kernel mode"),
                }
                for co in 0..*cout {
                    let acc = &mut dst[co * p_total + p0..co * p_total + p0 + tile];
                    let bv = bias[co];
                    for v in acc.iter_mut() {
                        *v += bv;
                    }
                    if *fuse_relu {
                        for v in acc.iter_mut() {
                            *v = v.max(0.0);
                        }
                    }
                }
            }
        }
        Step::Dense { wt, wt_class, bias, in_features, out_features, fuse_relu } => {
            let wt = wt.as_slice();
            let outf = *out_features;
            dst.fill(0.0);
            match kernel {
                Some(kern) => {
                    // The batched GEMM's loop with the activation as the
                    // shared operand (operand order must match
                    // `multiply(x, wᵀ)` — see `gemm_with`). Weight rows were
                    // classified at compile time, so the kernel goes
                    // straight to the class-matched lane sweep.
                    for ki in 0..*in_features {
                        let row = &wt[ki * outf..(ki + 1) * outf];
                        kern.axpy_classified(src[ki], row, wt_class[ki], dst);
                    }
                }
                None => {
                    // Exact path: mirror `matmul(x, wᵀ)` with its
                    // zero-activation skip.
                    for ki in 0..*in_features {
                        let av = src[ki];
                        if av == 0.0 {
                            continue;
                        }
                        for (o, &bv) in dst.iter_mut().zip(&wt[ki * outf..(ki + 1) * outf]) {
                            *o += av * bv;
                        }
                    }
                }
            }
            for (o, &bv) in dst.iter_mut().zip(bias) {
                *o += bv;
            }
            if *fuse_relu {
                for v in dst.iter_mut() {
                    *v = v.max(0.0);
                }
            }
        }
        Step::MaxPool { window, stride } => {
            let (c, h, w) = (shapes.in_shape[0], shapes.in_shape[1], shapes.in_shape[2]);
            let (oh, ow) = (shapes.out_shape[1], shapes.out_shape[2]);
            for ci in 0..c {
                let plane = &src[ci * h * w..(ci + 1) * h * w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..*window {
                            for kx in 0..*window {
                                let v = plane[(oy * stride + ky) * w + (ox * stride + kx)];
                                if v > best {
                                    best = v;
                                }
                            }
                        }
                        dst[(ci * oh + oy) * ow + ox] = best;
                    }
                }
            }
        }
        Step::Relu => {
            for (o, &v) in dst.iter_mut().zip(src) {
                *o = v.max(0.0);
            }
        }
        Step::BatchNorm { mean, denom, gamma, beta } => {
            let c = gamma.len();
            let plane = if shapes.in_shape.len() == 3 {
                shapes.in_shape[1] * shapes.in_shape[2]
            } else {
                1
            };
            for (i, (o, &v)) in dst.iter_mut().zip(src).enumerate() {
                let ch = (i / plane) % c;
                let h = (v - mean[ch]) / denom[ch];
                *o = gamma[ch] * h + beta[ch];
            }
        }
        Step::QuantAct { bits } => {
            for (o, &v) in dst.iter_mut().zip(src) {
                *o = quantize_k(v.clamp(0.0, 1.0), *bits);
            }
        }
        Step::Flatten => unreachable!("flatten steps are skipped by run_item"),
        Step::QuantizeInput { .. }
        | Step::QConv { .. }
        | Step::QDense { .. }
        | Step::QConv4 { .. }
        | Step::QDense4 { .. }
        | Step::QMaxPool { .. }
        | Step::QRelu { .. }
        | Step::QDequantize { .. } => {
            unreachable!("quantized steps run in run_item_q")
        }
    }
}

/// [`gather_patches`] over activation *codes*: identical tap addressing,
/// with padded taps filled by `pad_code` (the activation quantizer's zero
/// point — the code for exactly `0.0`). Writes output pixels `p0..p0+cols`
/// of one item into columns `col0..col0+cols` of each `row_stride`-wide
/// gather row, so several small items can share one tile.
#[allow(clippy::too_many_arguments)]
fn gather_patches_u8(
    src: &[u8],
    cin: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    ow: usize,
    p0: usize,
    cols: usize,
    row_stride: usize,
    col0: usize,
    gather: &mut [u8],
    pad_code: u8,
) {
    let mut row = 0usize;
    for c in 0..cin {
        let plane = &src[c * h * w..(c + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let out_row = &mut gather[row * row_stride + col0..][..cols];
                let mut idx = 0usize;
                // Track the output pixel incrementally: a div/mod per
                // segment would dominate small-plane gathers.
                let mut oy = p0 / ow;
                let mut ox0 = p0 % ow;
                while idx < cols {
                    let seg = (ow - ox0).min(cols - idx);
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        out_row[idx..idx + seg].fill(pad_code);
                    } else if stride == 1 {
                        // Contiguous taps: pad the out-of-plane flanks,
                        // memcpy the interior (the conv hot case).
                        let src_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                        let ix0 = (ox0 + kx) as isize - pad as isize;
                        let lo = (-ix0).clamp(0, seg as isize) as usize;
                        let hi = (w as isize - ix0).clamp(lo as isize, seg as isize) as usize;
                        out_row[idx..idx + lo].fill(pad_code);
                        let src_seg =
                            &src_row[(ix0 + lo as isize) as usize..(ix0 + hi as isize) as usize];
                        let dst_seg = &mut out_row[idx + lo..idx + hi];
                        if hi - lo <= 32 {
                            // Small planes produce thousands of tiny
                            // segments; a plain loop beats a memcpy call.
                            for (o, &s) in dst_seg.iter_mut().zip(src_seg) {
                                *o = s;
                            }
                        } else {
                            dst_seg.copy_from_slice(src_seg);
                        }
                        out_row[idx + hi..idx + seg].fill(pad_code);
                    } else {
                        let src_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                        for (s, o) in out_row[idx..idx + seg].iter_mut().enumerate() {
                            let ix = ((ox0 + s) * stride + kx) as isize - pad as isize;
                            *o = if ix >= 0 && ix < w as isize {
                                src_row[ix as usize]
                            } else {
                                pad_code
                            };
                        }
                    }
                    idx += seg;
                    ox0 += seg;
                    if ox0 >= ow {
                        ox0 = 0;
                        oy += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// [`gather_patches_u8`] **transposed**: one gather row per output *pixel*
/// (`gather[(p - p0)·k + tap]` for pixels `p0..p0+rows`), each holding the
/// pixel's `Cin·Kh·Kw` tap codes in ascending-tap order. This is the left
/// matrix of the int4 shuffle conv, whose GEMM runs pixels-as-rows so the
/// weight codes land on the vectorized axis.
#[allow(clippy::too_many_arguments)]
fn gather_patch_rows_u8(
    src: &[u8],
    cin: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    ow: usize,
    p0: usize,
    rows: usize,
    gather: &mut [u8],
    pad_code: u8,
) {
    let k = cin * kh * kw;
    for s in 0..rows {
        let p = p0 + s;
        let (oy, ox) = (p / ow, p % ow);
        let out_row = &mut gather[s * k..(s + 1) * k];
        let mut tap = 0usize;
        for c in 0..cin {
            let plane = &src[c * h * w..(c + 1) * h * w];
            for ky in 0..kh {
                let iy = (oy * stride + ky) as isize - pad as isize;
                if iy < 0 || iy >= h as isize {
                    out_row[tap..tap + kw].fill(pad_code);
                    tap += kw;
                    continue;
                }
                let src_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                for kx in 0..kw {
                    let ix = (ox * stride + kx) as isize - pad as isize;
                    out_row[tap] =
                        if ix >= 0 && ix < w as isize { src_row[ix as usize] } else { pad_code };
                    tap += 1;
                }
            }
        }
    }
}

/// Gather the im2col rows for output pixels `p0..p0+tile` into
/// `gather[row·tile..]`, zero-filling padded taps — the on-the-fly
/// replacement for materializing full im2col columns.
#[allow(clippy::too_many_arguments)]
fn gather_patches(
    src: &[f32],
    cin: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    ow: usize,
    p0: usize,
    tile: usize,
    gather: &mut [f32],
) {
    let mut row = 0usize;
    for c in 0..cin {
        let plane = &src[c * h * w..(c + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let out_row = &mut gather[row * tile..(row + 1) * tile];
                let mut idx = 0usize;
                let mut p = p0;
                while idx < tile {
                    let oy = p / ow;
                    let ox0 = p % ow;
                    let seg = (ow - ox0).min(tile - idx);
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        out_row[idx..idx + seg].fill(0.0);
                    } else {
                        let src_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                        for (s, o) in out_row[idx..idx + seg].iter_mut().enumerate() {
                            let ix = ((ox0 + s) * stride + kx) as isize - pad as isize;
                            *o =
                                if ix >= 0 && ix < w as isize { src_row[ix as usize] } else { 0.0 };
                        }
                    }
                    idx += seg;
                    p += seg;
                }
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Dropout, Flatten, MaxPool2d, Relu};
    use crate::Mode;
    use da_arith::MultiplierKind;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    fn tiny_cnn(rng: &mut rand::rngs::StdRng) -> Network {
        Network::new("engine-tiny")
            .push(Conv2d::new(1, 3, 3, 1, 1, rng))
            .push(Relu)
            .push(MaxPool2d::new(2, 2))
            .push(Dropout::new(0.5))
            .push(Flatten)
            .push(Dense::new(3 * 4 * 4, 5, rng))
    }

    #[test]
    fn fusion_drops_noops_and_fuses_relu() {
        let mut rng = rng();
        let net = tiny_cnn(&mut rng);
        let plan = InferencePlan::compile(&net, None).expect("compilable");
        // conv(+relu fused), pool, flatten, dense: dropout dropped, relu fused.
        assert_eq!(plan.depth(), 4);
    }

    #[test]
    fn plan_matches_forward_for_every_kind_and_native() {
        let mut rng = rng();
        let mut net = tiny_cnn(&mut rng);
        let x = Tensor::randn(&[3, 1, 8, 8], 1.0, &mut rng);
        for kind in MultiplierKind::ALL.into_iter().map(Some).chain([None]) {
            let mult = kind.map(|k| k.build());
            net.set_multiplier(mult.clone());
            let want = net.forward(&x, Mode::Eval).0;
            let plan = InferencePlan::compile(&net, mult).expect("compilable");
            let got = plan.predict_batch(&x);
            assert_eq!(got.shape(), want.shape());
            for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "{kind:?} elem {i}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn workspaces_are_reused_across_calls() {
        let mut rng = rng();
        let mut net = tiny_cnn(&mut rng);
        net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
        let plan = InferencePlan::compile(&net, net.multiplier().cloned()).unwrap();
        let x = Tensor::randn(&[2, 1, 8, 8], 1.0, &mut rng);
        let _ = plan.predict_batch(&x);
        let after_first = plan.workspace_allocations();
        assert!(after_first > 0, "first call must size the arena");
        for _ in 0..5 {
            let _ = plan.predict_batch(&x);
        }
        assert_eq!(plan.workspace_allocations(), after_first, "steady state must not allocate");
    }

    #[test]
    fn predict_matches_network_predict() {
        let mut rng = rng();
        let net = tiny_cnn(&mut rng);
        let x = Tensor::randn(&[4, 1, 8, 8], 1.0, &mut rng);
        let plan = InferencePlan::compile(&net, None).unwrap();
        assert_eq!(plan.predict(&x), net.predict(&x));
    }

    #[test]
    fn multiplier_mismatch_declines_to_compile() {
        let mut rng = rng();
        let mut net = tiny_cnn(&mut rng);
        // Plan multiplier must agree with the layers' installed multiplier —
        // a mismatched plan would silently diverge from `forward`.
        assert!(InferencePlan::compile(&net, Some(MultiplierKind::AxFpm.build())).is_none());
        net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
        assert!(InferencePlan::compile(&net, None).is_none());
        assert!(InferencePlan::compile(&net, Some(MultiplierKind::Bfloat16.build())).is_none());
        assert!(InferencePlan::compile(&net, Some(MultiplierKind::AxFpm.build())).is_some());
        // A layer carrying its own multiplier (set before push) is caught
        // too: `Network::logits` falls back to the per-layer forward.
        let mut conv = Conv2d::new(1, 2, 3, 1, 0, &mut rng);
        crate::Layer::set_multiplier(&mut conv, Some(MultiplierKind::AxFpm.build()));
        let net = Network::new("divergent").push(conv);
        assert!(InferencePlan::compile(&net, None).is_none());
        let x = Tensor::rand_uniform(&[1, 1, 6, 6], 0.0, 1.0, &mut rng);
        assert_eq!(net.logits(&x), net.forward(&x, Mode::Eval).0);
    }

    #[test]
    fn uncompilable_layer_yields_none() {
        struct Opaque;
        impl crate::Layer for Opaque {
            fn name(&self) -> &'static str {
                "opaque"
            }
            fn forward(&self, x: &Tensor, _mode: Mode) -> (Tensor, crate::Cache) {
                (x.clone(), crate::Cache::none())
            }
            fn backward(&self, _cache: &crate::Cache, grad: &Tensor) -> (Tensor, Vec<Tensor>) {
                (grad.clone(), Vec::new())
            }
        }
        let net = Network::new("opaque").push(Opaque);
        assert!(InferencePlan::compile(&net, None).is_none());
        // Network::logits still works via the per-layer fallback.
        let x = Tensor::zeros(&[1, 3]);
        assert_eq!(net.logits(&x), x);
    }

    #[test]
    #[should_panic(expected = "input channel mismatch")]
    fn layout_validates_like_forward() {
        let mut rng = rng();
        let net = Network::new("bad").push(Conv2d::new(3, 4, 3, 1, 0, &mut rng));
        let plan = InferencePlan::compile(&net, None).unwrap();
        let _ = plan.predict_batch(&Tensor::zeros(&[1, 2, 8, 8]));
    }
}
