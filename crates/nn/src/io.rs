//! Self-contained binary weight serialization (little-endian, versioned).
//!
//! No serde format crate is available offline, so the format is deliberately
//! trivial: a magic tag, a version, the tensor count, then each tensor as
//! `rank, dims..., f32 data`. Loading validates the shapes against the
//! receiving network and rejects corrupt or mismatched files.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use da_tensor::Tensor;

use crate::Network;

const MAGIC: &[u8; 4] = b"DANN";
const VERSION: u32 = 1;

/// Errors produced by model (de)serialization.
#[derive(Debug)]
pub enum ModelIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid or mismatched file.
    Format(String),
}

impl fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "model file i/o error: {e}"),
            ModelIoError::Format(msg) => write!(f, "invalid model file: {msg}"),
        }
    }
}

impl std::error::Error for ModelIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelIoError::Io(e) => Some(e),
            ModelIoError::Format(_) => None,
        }
    }
}

impl From<io::Error> for ModelIoError {
    fn from(e: io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

/// Write `network`'s parameters to `path`.
///
/// # Errors
///
/// Returns [`ModelIoError::Io`] on filesystem failures.
pub fn save_params(network: &Network, path: impl AsRef<Path>) -> Result<(), ModelIoError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let params = network.params();
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        w.write_all(&(p.shape().len() as u32).to_le_bytes())?;
        for &d in p.shape() {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in p.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Load parameters saved by [`save_params`] into `network`.
///
/// # Errors
///
/// Returns [`ModelIoError::Format`] if the file is corrupt, from a different
/// version, or its tensor count/shapes do not match `network`.
pub fn load_params(network: &mut Network, path: impl AsRef<Path>) -> Result<(), ModelIoError> {
    let mut r = BufReader::new(File::open(path)?);

    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|_| ModelIoError::Format("file too short for header".into()))?;
    if &magic != MAGIC {
        return Err(ModelIoError::Format(format!("bad magic {magic:?}")));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(ModelIoError::Format(format!("unsupported version {version}")));
    }

    let count = read_u32(&mut r)? as usize;
    let expected = network.params().len();
    if count != expected {
        return Err(ModelIoError::Format(format!(
            "file has {count} tensors, network '{}' expects {expected}",
            network.name()
        )));
    }

    let mut tensors = Vec::with_capacity(count);
    for idx in 0..count {
        let rank = read_u32(&mut r)? as usize;
        if rank == 0 || rank > 8 {
            return Err(ModelIoError::Format(format!("tensor {idx} has rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u32(&mut r)? as usize);
        }
        let len: usize = shape.iter().product();
        if len == 0 || len > (1 << 28) {
            return Err(ModelIoError::Format(format!(
                "tensor {idx} has implausible shape {shape:?}"
            )));
        }
        let mut data = vec![0.0f32; len];
        for v in &mut data {
            *v = read_f32(&mut r)?;
        }
        tensors.push(Tensor::from_vec(data, &shape));
    }

    // Trailing garbage indicates corruption.
    let mut probe = [0u8; 1];
    if r.read(&mut probe)? != 0 {
        return Err(ModelIoError::Format("trailing bytes after tensor data".into()));
    }

    // Validate every shape before mutating anything.
    for (idx, (current, loaded)) in network.params().iter().zip(&tensors).enumerate() {
        if current.shape() != loaded.shape() {
            return Err(ModelIoError::Format(format!(
                "tensor {idx} shape {:?} does not match network shape {:?}",
                loaded.shape(),
                current.shape()
            )));
        }
    }
    for (param, loaded) in network.params_mut().into_iter().zip(tensors) {
        *param = loaded;
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, ModelIoError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).map_err(|_| ModelIoError::Format("unexpected end of file".into()))?;
    Ok(u32::from_le_bytes(buf))
}

fn read_f32<R: Read>(r: &mut R) -> Result<f32, ModelIoError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).map_err(|_| ModelIoError::Format("unexpected end of file".into()))?;
    Ok(f32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("da-nn-io-tests");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(name)
    }

    fn make_net(seed: u64) -> Network {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Network::new("io-test")
            .push(Dense::new(4, 8, &mut rng))
            .push(Relu)
            .push(Dense::new(8, 2, &mut rng))
    }

    #[test]
    fn round_trip_preserves_outputs() {
        let path = tmp("round_trip.bin");
        let source = make_net(1);
        save_params(&source, &path).expect("save");
        let mut target = make_net(2);
        let x = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4], &[1, 4]);
        assert_ne!(source.logits(&x), target.logits(&x));
        load_params(&mut target, &path).expect("load");
        assert_eq!(source.logits(&x), target.logits(&x));
    }

    #[test]
    fn rejects_truncated_file() {
        let path = tmp("truncated.bin");
        save_params(&make_net(3), &path).expect("save");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        let err = load_params(&mut make_net(3), &path).expect_err("must fail");
        assert!(matches!(err, ModelIoError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("bad_magic.bin");
        std::fs::write(&path, b"NOPE00000000").expect("write");
        let err = load_params(&mut make_net(4), &path).expect_err("must fail");
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let path = tmp("arch_mismatch.bin");
        save_params(&make_net(5), &path).expect("save");
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut other = Network::new("other").push(Dense::new(4, 3, &mut rng));
        let err = load_params(&mut other, &path).expect_err("must fail");
        assert!(matches!(err, ModelIoError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let path = tmp("trailing.bin");
        save_params(&make_net(7), &path).expect("save");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.push(0xAB);
        std::fs::write(&path, bytes).expect("extend");
        let err = load_params(&mut make_net(7), &path).expect_err("must fail");
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_params(&mut make_net(8), tmp("does_not_exist.bin")).expect_err("must fail");
        assert!(matches!(err, ModelIoError::Io(_)), "{err}");
    }
}
