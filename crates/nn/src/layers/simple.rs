//! Stateless layers: ReLU, Flatten, Dropout, and the DoReFa activation
//! quantizer.

use rand::{Rng, SeedableRng};

use da_tensor::Tensor;

use super::{Cache, Layer, Mode};
use crate::engine::CompiledLayer;
use crate::quant::quantize_k;

/// Rectified linear unit.
///
/// # Examples
///
/// ```
/// use da_nn::layers::{Layer, Mode, Relu};
/// use da_tensor::Tensor;
///
/// let (y, _) = Relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]), Mode::Eval);
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Relu;

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&self, x: &Tensor, _mode: Mode) -> (Tensor, Cache) {
        let y = x.map(|v| v.max(0.0));
        (y, Cache::with_tensor(x.clone()))
    }

    fn backward(&self, cache: &Cache, grad: &Tensor) -> (Tensor, Vec<Tensor>) {
        let x = &cache.tensors[0];
        (grad.zip_map(x, |g, v| if v > 0.0 { g } else { 0.0 }), Vec::new())
    }

    fn compile_eval(&self) -> Option<CompiledLayer> {
        Some(CompiledLayer::Relu)
    }
}

/// Collapse `[N, ...]` to `[N, features]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flatten;

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&self, x: &Tensor, _mode: Mode) -> (Tensor, Cache) {
        let n = x.shape()[0];
        let features: usize = x.shape()[1..].iter().product();
        let cache = Cache { tensors: Vec::new(), indices: x.shape().to_vec() };
        (x.clone().reshape(&[n, features]), cache)
    }

    fn backward(&self, cache: &Cache, grad: &Tensor) -> (Tensor, Vec<Tensor>) {
        (grad.clone().reshape(&cache.indices), Vec::new())
    }

    fn compile_eval(&self) -> Option<CompiledLayer> {
        Some(CompiledLayer::Flatten)
    }
}

/// Inverted dropout: active only in [`Mode::Train`], scaling survivors by
/// `1 / (1 - p)` so evaluation needs no rescaling.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Drop probability `p` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        Dropout { p }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&self, x: &Tensor, mode: Mode) -> (Tensor, Cache) {
        match mode {
            Mode::Eval => (x.clone(), Cache::with_tensor(Tensor::ones(x.shape()))),
            Mode::Train { seed } => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let keep = 1.0 - self.p;
                let mask = Tensor::from_vec(
                    (0..x.len())
                        .map(|_| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
                        .collect(),
                    x.shape(),
                );
                (x.zip_map(&mask, |v, m| v * m), Cache::with_tensor(mask))
            }
        }
    }

    fn backward(&self, cache: &Cache, grad: &Tensor) -> (Tensor, Vec<Tensor>) {
        (grad.zip_map(&cache.tensors[0], |g, m| g * m), Vec::new())
    }

    fn compile_eval(&self) -> Option<CompiledLayer> {
        // Inverted dropout is the identity in evaluation mode.
        Some(CompiledLayer::Identity)
    }
}

/// DoReFa activation quantizer: `q_k(clip(x, 0, 1))` with a straight-through
/// gradient on the clipped range (Defensive Quantization's "full" mode).
#[derive(Debug, Clone, Copy)]
pub struct QuantAct {
    bits: u32,
}

impl QuantAct {
    /// Quantize activations to `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn new(bits: u32) -> Self {
        assert!(bits >= 1, "activation quantization needs at least 1 bit");
        QuantAct { bits }
    }
}

impl Layer for QuantAct {
    fn name(&self) -> &'static str {
        "quant-act"
    }

    fn forward(&self, x: &Tensor, _mode: Mode) -> (Tensor, Cache) {
        let bits = self.bits;
        let y = x.map(|v| quantize_k(v.clamp(0.0, 1.0), bits));
        (y, Cache::with_tensor(x.clone()))
    }

    fn backward(&self, cache: &Cache, grad: &Tensor) -> (Tensor, Vec<Tensor>) {
        // Straight-through inside the clip range, zero outside.
        let x = &cache.tensors[0];
        (grad.zip_map(x, |g, v| if (0.0..=1.0).contains(&v) { g } else { 0.0 }), Vec::new())
    }

    fn compile_eval(&self) -> Option<CompiledLayer> {
        Some(CompiledLayer::QuantAct { bits: self.bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use rand::SeedableRng;

    #[test]
    fn relu_gradient_gates_on_sign() {
        let x = Tensor::from_vec(vec![-2.0, 0.5, 3.0], &[1, 3]);
        let (y, cache) = Relu.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[0.0, 0.5, 3.0]);
        let (dx, _) = Relu.backward(&cache, &Tensor::ones(&[1, 3]));
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn flatten_round_trips_shapes() {
        let x = Tensor::zeros(&[2, 3, 4, 5]);
        let (y, cache) = Flatten.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 60]);
        let (dx, _) = Flatten.backward(&cache, &y);
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[4, 10], 1.0, &mut rng);
        let (y, _) = Dropout::new(0.5).forward(&x, Mode::Eval);
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_train_zeroes_and_rescales() {
        let x = Tensor::ones(&[1, 1000]);
        let (y, _) = Dropout::new(0.5).forward(&x, Mode::Train { seed: 3 });
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let twos = y.data().iter().filter(|&&v| (v - 2.0).abs() < 1e-6).count();
        assert_eq!(zeros + twos, 1000);
        assert!((300..700).contains(&zeros), "zeros={zeros}");
    }

    #[test]
    fn dropout_is_deterministic_per_seed() {
        let x = Tensor::ones(&[1, 64]);
        let d = Dropout::new(0.3);
        let (a, _) = d.forward(&x, Mode::Train { seed: 9 });
        let (b, _) = d.forward(&x, Mode::Train { seed: 9 });
        let (c, _) = d.forward(&x, Mode::Train { seed: 10 });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn quant_act_produces_discrete_levels_and_clips() {
        let q = QuantAct::new(2);
        let x = Tensor::from_vec(vec![-0.5, 0.2, 0.5, 0.9, 1.5], &[1, 5]);
        let (y, _) = q.forward(&x, Mode::Eval);
        assert_eq!(y.data()[0], 0.0);
        assert_eq!(y.data()[4], 1.0);
        for &v in y.data() {
            let lv = v * 3.0;
            assert!((lv - lv.round()).abs() < 1e-6, "level {v}");
        }
    }

    #[test]
    fn quant_act_gradient_is_straight_through_in_range() {
        let q = QuantAct::new(4);
        let x = Tensor::from_vec(vec![-0.5, 0.5, 1.5], &[1, 3]);
        let (_, cache) = q.forward(&x, Mode::Eval);
        let (dx, _) = q.backward(&cache, &Tensor::ones(&[1, 3]));
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn relu_matches_finite_differences() {
        // Shift inputs away from the kink for a clean finite-difference check.
        let x = Tensor::from_vec((0..20).map(|i| (i as f32 - 9.7) * 0.5).collect(), &[2, 10]);
        gradcheck::check_input_gradient(&Relu, &x, 1e-2);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn dropout_rejects_p_one() {
        let _ = Dropout::new(1.0);
    }
}
