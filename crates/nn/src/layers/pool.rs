//! Max pooling.

use da_tensor::ops::ConvGeometry;
use da_tensor::Tensor;

use super::{Cache, Layer, Mode};
use crate::engine::CompiledLayer;

/// Batched NCHW max pooling (multiplication-free, so identical between exact
/// and approximate classifiers — paper §4.2).
///
/// # Examples
///
/// ```
/// use da_nn::layers::{Layer, MaxPool2d, Mode};
/// use da_tensor::Tensor;
///
/// let pool = MaxPool2d::new(2, 2);
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
/// let (y, _) = pool.forward(&x, Mode::Eval);
/// assert_eq!(y.data(), &[4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
}

impl MaxPool2d {
    /// A pooling window of `kernel × kernel` moved by `stride`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        MaxPool2d { kernel, stride }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&self, x: &Tensor, _mode: Mode) -> (Tensor, Cache) {
        assert_eq!(x.shape().len(), 4, "MaxPool2d expects [N, C, H, W]");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let geom = ConvGeometry {
            input: (h, w),
            kernel: (self.kernel, self.kernel),
            stride: self.stride,
            pad: 0,
        };
        let (oh, ow) = geom.output();

        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];
        let xd = x.data();
        let od = out.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let plane = &xd[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                let v = plane[iy * w + ix];
                                if v > best {
                                    best = v;
                                    best_idx = iy * w + ix;
                                }
                            }
                        }
                        let o = ((ni * c + ci) * oh + oy) * ow + ox;
                        od[o] = best;
                        argmax[o] = (ni * c + ci) * h * w + best_idx;
                    }
                }
            }
        }

        let cache = Cache {
            tensors: Vec::new(),
            indices: {
                let mut v = vec![n, c, h, w];
                v.extend(argmax);
                v
            },
        };
        (out, cache)
    }

    fn backward(&self, cache: &Cache, grad: &Tensor) -> (Tensor, Vec<Tensor>) {
        let (n, c, h, w) = (cache.indices[0], cache.indices[1], cache.indices[2], cache.indices[3]);
        let argmax = &cache.indices[4..];
        let mut dx = Tensor::zeros(&[n, c, h, w]);
        let dxd = dx.data_mut();
        for (g, &src) in grad.data().iter().zip(argmax) {
            dxd[src] += g;
        }
        (dx, Vec::new())
    }

    fn compile_eval(&self) -> Option<CompiledLayer> {
        Some(CompiledLayer::MaxPool2d { kernel: self.kernel, stride: self.stride })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pools_known_windows() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, -4.0, 0.25, 0.75,
            ],
            &[1, 1, 4, 4],
        );
        let pool = MaxPool2d::new(2, 2);
        let (y, _) = pool.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[4.0, 8.0, -1.0, 0.75]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax_only() {
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let pool = MaxPool2d::new(2, 2);
        let (_, cache) = pool.forward(&x, Mode::Eval);
        let grad = Tensor::from_vec(vec![2.5], &[1, 1, 1, 1]);
        let (dx, params) = pool.backward(&cache, &grad);
        assert!(params.is_empty());
        assert_eq!(dx.data(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn overlapping_windows_accumulate_gradients() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let x = Tensor::randn(&[1, 1, 4, 4], 1.0, &mut rng);
        let pool = MaxPool2d::new(3, 1); // 2×2 outputs with overlap
        let (y, cache) = pool.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        let grad = Tensor::ones(&[1, 1, 2, 2]);
        let (dx, _) = pool.backward(&cache, &grad);
        // Total gradient mass is conserved.
        assert!((dx.sum() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn shapes_follow_stride() {
        let pool = MaxPool2d::new(2, 2);
        let x = Tensor::zeros(&[3, 5, 8, 8]);
        let (y, _) = pool.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[3, 5, 4, 4]);
    }
}
