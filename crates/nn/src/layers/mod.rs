//! Network layers.
//!
//! Every layer implements [`Layer`]: a pure `forward` producing the output
//! and a [`Cache`], and a `backward` consuming that cache. Layers with
//! learnable parameters expose them positionally via `params`/`params_mut`;
//! `backward` returns parameter gradients in the same order.

use std::sync::Arc;

use da_arith::Multiplier;
use da_tensor::Tensor;

mod approx;
mod conv;
mod dense;
mod norm;
mod pool;
mod simple;

pub use approx::{gemm_with, matmul_with, matmul_with_scalar, transpose2d};
pub use conv::Conv2d;
pub use dense::Dense;
pub use norm::BatchNorm;
pub use pool::MaxPool2d;
pub use simple::{Dropout, Flatten, QuantAct, Relu};

/// Forward-pass mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Inference: dropout disabled, batch norm uses running statistics.
    Eval,
    /// Training: the seed drives per-batch stochastic layers (dropout).
    Train {
        /// Batch-level seed; layers derive their own stream from it.
        seed: u64,
    },
}

impl Mode {
    /// Derive a per-layer mode so stacked stochastic layers decorrelate.
    pub fn for_layer(self, layer_index: usize) -> Mode {
        match self {
            Mode::Eval => Mode::Eval,
            Mode::Train { seed } => Mode::Train {
                seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(layer_index as u64 + 1),
            },
        }
    }

    /// `true` in training mode.
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train { .. })
    }
}

/// Opaque per-layer forward state consumed by `backward`.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    /// Saved tensors (inputs, masks, normalized activations, ...).
    pub tensors: Vec<Tensor>,
    /// Saved index data (pooling argmaxes, shapes).
    pub indices: Vec<usize>,
}

impl Cache {
    /// An empty cache for stateless layers.
    pub fn none() -> Cache {
        Cache::default()
    }

    /// A cache holding one tensor.
    pub fn with_tensor(t: Tensor) -> Cache {
        Cache { tensors: vec![t], indices: Vec::new() }
    }
}

/// A differentiable network layer.
///
/// Object-safe so a [`crate::Network`] can hold heterogeneous stacks.
pub trait Layer: Send + Sync {
    /// Stable layer-kind name (used in summaries and serialization checks).
    fn name(&self) -> &'static str;

    /// Compute the output for a batched input and the state `backward` needs.
    fn forward(&self, x: &Tensor, mode: Mode) -> (Tensor, Cache);

    /// Propagate `grad` (∂L/∂output) to the input, returning
    /// `(∂L/∂input, parameter gradients aligned with params())`.
    fn backward(&self, cache: &Cache, grad: &Tensor) -> (Tensor, Vec<Tensor>);

    /// Learnable parameters (empty for stateless layers).
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutable learnable parameters, same order as `params`.
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Install (or clear) the approximate multiplier used by this layer's
    /// forward inner products. Default: no-op for layers without multiplies.
    fn set_multiplier(&mut self, _multiplier: Option<Arc<dyn Multiplier>>) {}

    /// The layer's compiled serving-time form, consumed by
    /// [`crate::engine::InferencePlan::compile`]: a snapshot of the
    /// evaluation-mode behavior (effective weights, running statistics).
    ///
    /// Default `None` for layers without a compiled form — the engine then
    /// declines to compile the whole network and [`crate::Network::logits`]
    /// falls back to the per-layer forward pass.
    fn compile_eval(&self) -> Option<crate::engine::CompiledLayer> {
        None
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by layer tests.

    use super::*;

    /// Compare analytic input gradients against central finite differences
    /// through an arbitrary scalar loss `L = Σ out ⊙ w`.
    pub fn check_input_gradient(layer: &dyn Layer, x: &Tensor, tol: f32) {
        let mode = Mode::Eval;
        let (out, cache) = layer.forward(x, mode);
        // Fixed pseudo-random loss weights make the test sensitive everywhere.
        let w: Vec<f32> =
            (0..out.len()).map(|i| ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5).collect();
        let grad_out = Tensor::from_vec(w.clone(), out.shape());
        let (grad_in, _) = layer.backward(&cache, &grad_out);

        let eps = 1e-2f32;
        for i in (0..x.len()).step_by((x.len() / 24).max(1)) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp: f32 =
                layer.forward(&xp, mode).0.data().iter().zip(&w).map(|(a, b)| a * b).sum();
            let lm: f32 =
                layer.forward(&xm, mode).0.data().iter().zip(&w).map(|(a, b)| a * b).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.data()[i];
            assert!(
                (numeric - analytic).abs() <= tol * (1.0 + numeric.abs().max(analytic.abs())),
                "input grad mismatch at {i}: numeric={numeric} analytic={analytic}"
            );
        }
    }

    /// Compare analytic parameter gradients against finite differences.
    pub fn check_param_gradients<L: Layer>(layer: &mut L, x: &Tensor, tol: f32) {
        let mode = Mode::Eval;
        let (out, cache) = layer.forward(x, mode);
        let w: Vec<f32> =
            (0..out.len()).map(|i| ((i * 1103515245) % 1000) as f32 / 1000.0 - 0.5).collect();
        let grad_out = Tensor::from_vec(w.clone(), out.shape());
        let (_, param_grads) = layer.backward(&cache, &grad_out);
        assert_eq!(param_grads.len(), layer.params().len());

        let eps = 1e-2f32;
        for p in 0..param_grads.len() {
            let n = layer.params()[p].len();
            for i in (0..n).step_by((n / 12).max(1)) {
                let orig = layer.params()[p].data()[i];
                layer.params_mut()[p].data_mut()[i] = orig + eps;
                let lp: f32 =
                    layer.forward(x, mode).0.data().iter().zip(&w).map(|(a, b)| a * b).sum();
                layer.params_mut()[p].data_mut()[i] = orig - eps;
                let lm: f32 =
                    layer.forward(x, mode).0.data().iter().zip(&w).map(|(a, b)| a * b).sum();
                layer.params_mut()[p].data_mut()[i] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = param_grads[p].data()[i];
                assert!(
                    (numeric - analytic).abs() <= tol * (1.0 + numeric.abs().max(analytic.abs())),
                    "param {p} grad mismatch at {i}: numeric={numeric} analytic={analytic}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_seeds_differ_per_layer() {
        let m = Mode::Train { seed: 7 };
        let a = m.for_layer(0);
        let b = m.for_layer(1);
        assert_ne!(a, b);
        assert_eq!(Mode::Eval.for_layer(3), Mode::Eval);
    }

    #[test]
    fn mode_train_detection() {
        assert!(Mode::Train { seed: 0 }.is_train());
        assert!(!Mode::Eval.is_train());
    }
}
