//! Batch normalization (needed by the Defensive Quantization models of
//! paper Appendix B).

use std::sync::Mutex;

use da_tensor::Tensor;

use super::{Cache, Layer, Mode};
use crate::engine::CompiledLayer;

/// Batch normalization over the channel axis of `[N, C, H, W]` or the feature
/// axis of `[N, F]`.
///
/// Running statistics are updated during training forward passes (interior
/// mutability; forward keeps its `&self` signature) and used in [`Mode::Eval`].
pub struct BatchNorm {
    gamma: Tensor, // [C]
    beta: Tensor,  // [C]
    running: Mutex<Running>,
    momentum: f32,
    eps: f32,
}

#[derive(Debug, Clone)]
struct Running {
    mean: Vec<f32>,
    var: Vec<f32>,
}

impl BatchNorm {
    /// Batch norm over `channels` with default momentum `0.1` and
    /// `eps = 1e-5`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channels must be positive");
        BatchNorm {
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            running: Mutex::new(Running { mean: vec![0.0; channels], var: vec![1.0; channels] }),
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// Per-channel element count and a closure mapping flat index → channel.
    fn channel_of(shape: &[usize]) -> impl Fn(usize) -> usize + '_ {
        move |flat: usize| match shape.len() {
            2 => flat % shape[1],
            4 => (flat / (shape[2] * shape[3])) % shape[1],
            _ => unreachable!("validated in forward"),
        }
    }
}

impl Layer for BatchNorm {
    fn name(&self) -> &'static str {
        "batchnorm"
    }

    fn forward(&self, x: &Tensor, mode: Mode) -> (Tensor, Cache) {
        let rank = x.shape().len();
        assert!(rank == 2 || rank == 4, "BatchNorm expects [N, F] or [N, C, H, W]");
        let c = self.channels();
        // In both layouts ([N, F] and [N, C, H, W]) axis 1 is the channel.
        let axis = x.shape()[1];
        assert_eq!(axis, c, "channel mismatch");
        let chan = Self::channel_of(x.shape());
        let per_channel = x.len() / c;

        let (mean, var) = if mode.is_train() {
            let mut mean = vec![0.0f64; c];
            let mut var = vec![0.0f64; c];
            for (i, &v) in x.data().iter().enumerate() {
                mean[chan(i)] += v as f64;
            }
            for m in &mut mean {
                *m /= per_channel as f64;
            }
            for (i, &v) in x.data().iter().enumerate() {
                let d = v as f64 - mean[chan(i)];
                var[chan(i)] += d * d;
            }
            for v in &mut var {
                *v /= per_channel as f64;
            }
            let mean: Vec<f32> = mean.iter().map(|&m| m as f32).collect();
            let var: Vec<f32> = var.iter().map(|&v| v as f32).collect();
            let mut running = self.running.lock().expect("running stats lock");
            for i in 0..c {
                running.mean[i] = (1.0 - self.momentum) * running.mean[i] + self.momentum * mean[i];
                running.var[i] = (1.0 - self.momentum) * running.var[i] + self.momentum * var[i];
            }
            (mean, var)
        } else {
            let running = self.running.lock().expect("running stats lock");
            (running.mean.clone(), running.var.clone())
        };

        let mut xhat = Tensor::zeros(x.shape());
        let mut y = Tensor::zeros(x.shape());
        for i in 0..x.len() {
            let ch = chan(i);
            let h = (x.data()[i] - mean[ch]) / (var[ch] + self.eps).sqrt();
            xhat.data_mut()[i] = h;
            y.data_mut()[i] = self.gamma.data()[ch] * h + self.beta.data()[ch];
        }

        let cache = Cache {
            tensors: vec![xhat, Tensor::from_vec(var.clone(), &[c])],
            indices: x.shape().to_vec(),
        };
        (y, cache)
    }

    fn backward(&self, cache: &Cache, grad: &Tensor) -> (Tensor, Vec<Tensor>) {
        let xhat = &cache.tensors[0];
        let var = &cache.tensors[1];
        let shape = &cache.indices;
        let c = self.channels();
        let chan = Self::channel_of(shape);
        let m = (grad.len() / c) as f32;

        // Parameter gradients.
        let mut dgamma = Tensor::zeros(&[c]);
        let mut dbeta = Tensor::zeros(&[c]);
        for i in 0..grad.len() {
            let ch = chan(i);
            dgamma.data_mut()[ch] += grad.data()[i] * xhat.data()[i];
            dbeta.data_mut()[ch] += grad.data()[i];
        }

        // Input gradient via the standard batch-norm backward formula
        // (training-statistics form; also a good STE for eval statistics).
        let mut dx = Tensor::zeros(shape);
        for i in 0..grad.len() {
            let ch = chan(i);
            let inv_std = 1.0 / (var.data()[ch] + self.eps).sqrt();
            let g = self.gamma.data()[ch];
            dx.data_mut()[i] = g * inv_std / m
                * (m * grad.data()[i] - dbeta.data()[ch] - xhat.data()[i] * dgamma.data()[ch]);
        }
        (dx, vec![dgamma, dbeta])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn compile_eval(&self) -> Option<CompiledLayer> {
        // Snapshot the running statistics: plans freeze eval-mode behavior
        // (the network invalidates its cached plan on training forwards).
        let running = self.running.lock().expect("running stats lock");
        Some(CompiledLayer::BatchNorm {
            mean: running.mean.clone(),
            var: running.var.clone(),
            gamma: self.gamma.data().to_vec(),
            beta: self.beta.data().to_vec(),
            eps: self.eps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn train_forward_normalizes_channels() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let x = Tensor::randn(&[8, 3, 4, 4], 3.0, &mut rng).map(|v| v + 5.0);
        let bn = BatchNorm::new(3);
        let (y, _) = bn.forward(&x, Mode::Train { seed: 0 });
        // Per-channel mean ≈ 0, variance ≈ 1.
        for ch in 0..3 {
            let mut vals = Vec::new();
            for n in 0..8 {
                for i in 0..16 {
                    vals.push(y.data()[(n * 3 + ch) * 16 + i]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-3, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let bn = BatchNorm::new(2);
        let x = Tensor::randn(&[16, 2], 1.0, &mut rng).map(|v| v + 3.0);
        // Warm up the running stats.
        for _ in 0..200 {
            let _ = bn.forward(&x, Mode::Train { seed: 0 });
        }
        let (y, _) = bn.forward(&x, Mode::Eval);
        // With converged running stats, eval output is near-normalized too.
        assert!(y.mean().abs() < 0.15, "eval mean {}", y.mean());
    }

    #[test]
    fn rank2_and_rank4_channel_mapping() {
        let bn = BatchNorm::new(2);
        let x2 = Tensor::from_vec(vec![1.0, 10.0, 3.0, 30.0], &[2, 2]);
        let (y2, _) = bn.forward(&x2, Mode::Train { seed: 0 });
        // Channel 0 holds {1, 3}; channel 1 holds {10, 30}: both normalize to ±1.
        assert!((y2.data()[0] + 1.0).abs() < 1e-2);
        assert!((y2.data()[2] - 1.0).abs() < 1e-2);
        assert!((y2.data()[1] + 1.0).abs() < 1e-2);
        assert!((y2.data()[3] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn gradients_sum_to_zero_per_channel() {
        // Batch-norm input gradients are mean-free per channel by construction.
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let bn = BatchNorm::new(3);
        let x = Tensor::randn(&[4, 3, 2, 2], 1.0, &mut rng);
        let (_, cache) = bn.forward(&x, Mode::Train { seed: 0 });
        let grad = Tensor::randn(&[4, 3, 2, 2], 1.0, &mut rng);
        let (dx, param_grads) = bn.backward(&cache, &grad);
        assert_eq!(param_grads.len(), 2);
        for ch in 0..3 {
            let mut s = 0.0f32;
            for n in 0..4 {
                for i in 0..4 {
                    s += dx.data()[(n * 3 + ch) * 4 + i];
                }
            }
            assert!(s.abs() < 1e-3, "channel {ch} grad sum {s}");
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn rejects_wrong_channel_count() {
        let bn = BatchNorm::new(4);
        let _ = bn.forward(&Tensor::zeros(&[1, 3, 2, 2]), Mode::Eval);
    }
}
