//! 2-D convolution with a pluggable forward multiplier.

use std::sync::Arc;

use da_arith::Multiplier;
use da_tensor::ops::{col2im, im2col, matmul, ConvGeometry};
use da_tensor::parallel::par_map_chunks;
use da_tensor::Tensor;

use super::approx::{matmul_with, transpose2d};
use super::{Cache, Layer, Mode};
use crate::engine::CompiledLayer;
use crate::quant::dorefa_quantize_weights;

/// A batched NCHW 2-D convolution layer.
///
/// The forward inner products go through the installed
/// [`Multiplier`] — swapping in Ax-FPM here is the paper's entire deployment
/// story. Backward is always exact (straight-through estimator, crate docs).
///
/// # Examples
///
/// ```
/// use da_nn::layers::{Conv2d, Layer, Mode};
/// use da_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let conv = Conv2d::new(1, 4, 3, 1, 1, &mut rng);
/// let x = Tensor::randn(&[2, 1, 8, 8], 1.0, &mut rng);
/// let (y, _) = conv.forward(&x, Mode::Eval);
/// assert_eq!(y.shape(), &[2, 4, 8, 8]);
/// ```
pub struct Conv2d {
    weight: Tensor, // [Cout, Cin, Kh, Kw]
    bias: Tensor,   // [Cout]
    stride: usize,
    pad: usize,
    multiplier: Option<Arc<dyn Multiplier>>,
    /// DoReFa weight quantization bit-width (Defensive Quantization).
    weight_bits: Option<u32>,
}

impl Conv2d {
    /// He-initialized convolution.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new<R: rand::Rng>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0);
        let fan_in = (in_channels * kernel * kernel) as f32;
        Conv2d {
            weight: Tensor::randn(
                &[out_channels, in_channels, kernel, kernel],
                (2.0 / fan_in).sqrt(),
                rng,
            ),
            bias: Tensor::zeros(&[out_channels]),
            stride,
            pad,
            multiplier: None,
            weight_bits: None,
        }
    }

    /// Enable DoReFa weight quantization at `bits` (builder-style).
    pub fn with_weight_bits(mut self, bits: u32) -> Self {
        assert!(bits >= 1, "quantization needs at least 1 bit");
        self.weight_bits = Some(bits);
        self
    }

    /// The geometry for an input of spatial size `(h, w)`.
    fn geometry(&self, h: usize, w: usize) -> ConvGeometry {
        ConvGeometry {
            input: (h, w),
            kernel: (self.weight.shape()[2], self.weight.shape()[3]),
            stride: self.stride,
            pad: self.pad,
        }
    }

    /// The weights actually used in the forward pass (quantized if enabled).
    fn effective_weight(&self) -> Tensor {
        match self.weight_bits {
            Some(bits) => dorefa_quantize_weights(&self.weight, bits),
            None => self.weight.clone(),
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&self, x: &Tensor, _mode: Mode) -> (Tensor, Cache) {
        assert_eq!(x.shape().len(), 4, "Conv2d expects [N, C, H, W]");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.weight.shape()[1], "input channel mismatch");
        let geom = self.geometry(h, w);
        let (oh, ow) = geom.output();
        let cout = self.weight.shape()[0];
        let k2 = self.weight.shape()[2] * self.weight.shape()[3];
        // `effective_weight` already hands back an owned tensor; reshape it
        // in place instead of cloning a second time.
        let wmat = self.effective_weight().reshape(&[cout, c * k2]);

        let item_len = cout * oh * ow;
        let mut out = vec![0.0f32; n * item_len];
        let run_item = |i: usize, piece: &mut [f32]| {
            let cols = im2col(&x.batch_item(i), geom);
            let y = match &self.multiplier {
                Some(m) => matmul_with(&**m, &wmat, &cols),
                None => matmul(&wmat, &cols),
            };
            piece.copy_from_slice(y.data());
            for co in 0..cout {
                let b = self.bias.data()[co];
                for v in &mut piece[co * oh * ow..(co + 1) * oh * ow] {
                    *v += b;
                }
            }
        };
        if self.multiplier.is_some() && n > 1 {
            // Gate-level multipliers dominate runtime; spread items over
            // CPUs. Each worker writes its item's disjoint output chunk
            // directly — no locking, no slot collection.
            par_map_chunks(&mut out, item_len, run_item);
        } else {
            for (i, piece) in out.chunks_mut(item_len).enumerate() {
                run_item(i, piece);
            }
        }

        (Tensor::from_vec(out, &[n, cout, oh, ow]), Cache::with_tensor(x.clone()))
    }

    fn backward(&self, cache: &Cache, grad: &Tensor) -> (Tensor, Vec<Tensor>) {
        let x = &cache.tensors[0];
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let geom = self.geometry(h, w);
        let (oh, ow) = geom.output();
        let cout = self.weight.shape()[0];
        let k2 = self.weight.shape()[2] * self.weight.shape()[3];

        // Straight-through: gradients flow through the *effective* weights,
        // and land on the latent weights unchanged.
        let wmat_t = transpose2d(&self.effective_weight().reshape(&[cout, c * k2])); // [C·K², Cout]

        let mut dw = Tensor::zeros(&[cout, c * k2]);
        let mut db = Tensor::zeros(&[cout]);
        let mut dx_items = Vec::with_capacity(n);
        for i in 0..n {
            let gi = grad.batch_item(i).reshape(&[cout, oh * ow]);
            let cols = im2col(&x.batch_item(i), geom);
            // dW += gi · colsᵀ
            dw.add_assign(&matmul(&gi, &transpose2d(&cols)));
            // db += row sums of gi
            for co in 0..cout {
                db.data_mut()[co] +=
                    gi.data()[co * oh * ow..(co + 1) * oh * ow].iter().sum::<f32>();
            }
            // dX = col2im(Wᵀ · gi)
            let dcols = matmul(&wmat_t, &gi);
            dx_items.push(col2im(&dcols, c, geom));
        }

        let dw = dw.reshape(self.weight.shape());
        (Tensor::stack(&dx_items), vec![dw, db])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn set_multiplier(&mut self, multiplier: Option<Arc<dyn Multiplier>>) {
        self.multiplier = multiplier;
    }

    fn compile_eval(&self) -> Option<CompiledLayer> {
        Some(CompiledLayer::Conv2d {
            weight: self.effective_weight(),
            bias: self.bias.clone(),
            stride: self.stride,
            pad: self.pad,
            multiplier: self.multiplier.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use da_arith::MultiplierKind;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    #[test]
    fn forward_shapes() {
        let mut rng = rng();
        let conv = Conv2d::new(3, 8, 5, 1, 0, &mut rng);
        let x = Tensor::randn(&[2, 3, 12, 12], 1.0, &mut rng);
        let (y, _) = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn bias_shifts_every_output() {
        let mut rng = rng();
        let mut conv = Conv2d::new(1, 2, 3, 1, 0, &mut rng);
        let x = Tensor::randn(&[1, 1, 5, 5], 1.0, &mut rng);
        let (y0, _) = conv.forward(&x, Mode::Eval);
        conv.params_mut()[1].data_mut()[0] = 10.0;
        let (y1, _) = conv.forward(&x, Mode::Eval);
        for i in 0..9 {
            assert!((y1.data()[i] - y0.data()[i] - 10.0).abs() < 1e-5);
        }
        for i in 9..18 {
            assert!((y1.data()[i] - y0.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        let mut rng = rng();
        let conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 2, 6, 6], 1.0, &mut rng);
        gradcheck::check_input_gradient(&conv, &x, 2e-2);
    }

    #[test]
    fn param_gradients_match_finite_differences() {
        let mut rng = rng();
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[2, 2, 7, 7], 1.0, &mut rng);
        gradcheck::check_param_gradients(&mut conv, &x, 2e-2);
    }

    #[test]
    fn approximate_forward_differs_but_correlates() {
        let mut rng = rng();
        let mut conv = Conv2d::new(1, 2, 3, 1, 0, &mut rng);
        let x = Tensor::rand_uniform(&[1, 1, 6, 6], 0.0, 1.0, &mut rng);
        let (exact, _) = conv.forward(&x, Mode::Eval);
        conv.set_multiplier(Some(MultiplierKind::AxFpm.build()));
        let (approx, _) = conv.forward(&x, Mode::Eval);
        assert_ne!(exact, approx, "approximation must perturb outputs");
        // Outputs stay in the same ballpark (bounded 2x-per-product noise).
        for (a, e) in approx.data().iter().zip(exact.data()) {
            assert!((a - e).abs() <= e.abs() + 1.0);
        }
    }

    #[test]
    fn parallel_batch_forward_matches_sequential() {
        let mut rng = rng();
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
        conv.set_multiplier(Some(MultiplierKind::AxFpm.build()));
        let x = Tensor::randn(&[6, 2, 8, 8], 1.0, &mut rng);
        let (batched, _) = conv.forward(&x, Mode::Eval);
        for i in 0..6 {
            let xi = Tensor::stack(&[x.batch_item(i)]);
            let (yi, _) = conv.forward(&xi, Mode::Eval);
            assert_eq!(batched.batch_item(i), yi.batch_item(0), "item {i}");
        }
    }

    #[test]
    fn quantized_weights_take_discrete_levels() {
        let mut rng = rng();
        let conv = Conv2d::new(1, 1, 3, 1, 0, &mut rng).with_weight_bits(2);
        let w = conv.effective_weight();
        // 2-bit DoReFa admits 4 levels in [-1, 1]: -1, -1/3, 1/3, 1.
        for &v in w.data() {
            let scaled = (v + 1.0) * 1.5;
            assert!((scaled - scaled.round()).abs() < 1e-5, "non-level weight {v}");
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn rejects_wrong_input_channels() {
        let mut rng = rng();
        let conv = Conv2d::new(3, 4, 3, 1, 0, &mut rng);
        let x = Tensor::zeros(&[1, 2, 8, 8]);
        let _ = conv.forward(&x, Mode::Eval);
    }
}
