//! Fully connected layer with a pluggable forward multiplier.

use std::sync::Arc;

use da_arith::Multiplier;
use da_tensor::ops::matmul;
use da_tensor::Tensor;

use super::approx::{matmul_with, transpose2d};
use super::{Cache, Layer, Mode};
use crate::engine::CompiledLayer;
use crate::quant::dorefa_quantize_weights;

/// `y = x · Wᵀ + b` over a `[N, In]` batch.
///
/// # Examples
///
/// ```
/// use da_nn::layers::{Dense, Layer, Mode};
/// use da_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let fc = Dense::new(4, 3, &mut rng);
/// let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
/// let (y, _) = fc.forward(&x, Mode::Eval);
/// assert_eq!(y.shape(), &[2, 3]);
/// ```
pub struct Dense {
    weight: Tensor, // [Out, In]
    bias: Tensor,   // [Out]
    multiplier: Option<Arc<dyn Multiplier>>,
    weight_bits: Option<u32>,
}

impl Dense {
    /// He-initialized fully connected layer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: rand::Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        assert!(in_features > 0 && out_features > 0);
        Dense {
            weight: Tensor::randn(
                &[out_features, in_features],
                (2.0 / in_features as f32).sqrt(),
                rng,
            ),
            bias: Tensor::zeros(&[out_features]),
            multiplier: None,
            weight_bits: None,
        }
    }

    /// Enable DoReFa weight quantization at `bits` (builder-style).
    pub fn with_weight_bits(mut self, bits: u32) -> Self {
        assert!(bits >= 1, "quantization needs at least 1 bit");
        self.weight_bits = Some(bits);
        self
    }

    fn effective_weight(&self) -> Tensor {
        match self.weight_bits {
            Some(bits) => dorefa_quantize_weights(&self.weight, bits),
            None => self.weight.clone(),
        }
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&self, x: &Tensor, _mode: Mode) -> (Tensor, Cache) {
        assert_eq!(x.shape().len(), 2, "Dense expects [N, In]");
        assert_eq!(x.shape()[1], self.weight.shape()[1], "feature mismatch");
        let wt = transpose2d(&self.effective_weight()); // [In, Out]
        let mut out = match &self.multiplier {
            Some(m) => matmul_with(&**m, x, &wt),
            None => matmul(x, &wt),
        };
        let (n, o) = (out.shape()[0], out.shape()[1]);
        let od = out.data_mut();
        for i in 0..n {
            for j in 0..o {
                od[i * o + j] += self.bias.data()[j];
            }
        }
        (out, Cache::with_tensor(x.clone()))
    }

    fn backward(&self, cache: &Cache, grad: &Tensor) -> (Tensor, Vec<Tensor>) {
        let x = &cache.tensors[0];
        let weight = self.effective_weight();
        // dX = dY · W ; dW = dYᵀ · X ; db = column sums of dY.
        let dx = matmul(grad, &weight);
        let dw = matmul(&transpose2d(grad), x);
        let (n, o) = (grad.shape()[0], grad.shape()[1]);
        let mut db = Tensor::zeros(&[o]);
        for i in 0..n {
            for j in 0..o {
                db.data_mut()[j] += grad.data()[i * o + j];
            }
        }
        (dx, vec![dw, db])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn set_multiplier(&mut self, multiplier: Option<Arc<dyn Multiplier>>) {
        self.multiplier = multiplier;
    }

    fn compile_eval(&self) -> Option<CompiledLayer> {
        Some(CompiledLayer::Dense {
            weight: self.effective_weight(),
            bias: self.bias.clone(),
            multiplier: self.multiplier.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use da_arith::MultiplierKind;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(6)
    }

    #[test]
    fn forward_matches_manual_computation() {
        let mut rng = rng();
        let mut fc = Dense::new(2, 2, &mut rng);
        fc.params_mut()[0].data_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        fc.params_mut()[1].data_mut().copy_from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let (y, _) = fc.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        let mut rng = rng();
        let fc = Dense::new(5, 4, &mut rng);
        let x = Tensor::randn(&[3, 5], 1.0, &mut rng);
        gradcheck::check_input_gradient(&fc, &x, 1e-2);
    }

    #[test]
    fn param_gradients_match_finite_differences() {
        let mut rng = rng();
        let mut fc = Dense::new(4, 3, &mut rng);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        gradcheck::check_param_gradients(&mut fc, &x, 1e-2);
    }

    #[test]
    fn approximate_dense_perturbs_output() {
        let mut rng = rng();
        let mut fc = Dense::new(8, 4, &mut rng);
        let x = Tensor::rand_uniform(&[2, 8], 0.1, 1.0, &mut rng);
        let (exact, _) = fc.forward(&x, Mode::Eval);
        fc.set_multiplier(Some(MultiplierKind::AxFpm.build()));
        let (approx, _) = fc.forward(&x, Mode::Eval);
        assert_ne!(exact, approx);
    }

    #[test]
    fn quantized_dense_uses_discrete_levels() {
        let mut rng = rng();
        let fc = Dense::new(10, 3, &mut rng).with_weight_bits(4);
        let w = fc.effective_weight();
        let levels = (1u32 << 4) - 1;
        for &v in w.data() {
            let scaled = (v + 1.0) / 2.0 * levels as f32;
            assert!((scaled - scaled.round()).abs() < 1e-4, "non-level weight {v}");
        }
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn rejects_wrong_input_width() {
        let mut rng = rng();
        let fc = Dense::new(4, 2, &mut rng);
        let _ = fc.forward(&Tensor::zeros(&[1, 5]), Mode::Eval);
    }
}
