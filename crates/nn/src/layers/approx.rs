//! Inner-product kernels routed through a pluggable scalar multiplier.
//!
//! Additions stay exact — the paper approximates only the multiplier (§4.1),
//! the dominant power consumer of the convolution datapath.

use da_arith::Multiplier;
use da_tensor::Tensor;

/// `A · B` where every scalar product goes through `multiplier`.
///
/// Shapes as in [`da_tensor::ops::matmul`]: `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
///
/// # Examples
///
/// ```
/// use da_arith::ExactMultiplier;
/// use da_nn::layers::matmul_with;
/// use da_tensor::{ops::matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![0.5, 1.0, -1.0, 2.0], &[2, 2]);
/// assert_eq!(matmul_with(&ExactMultiplier, &a, &b), matmul(&a, &b));
/// ```
pub fn matmul_with(multiplier: &dyn Multiplier, a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "matmul_with lhs must be rank-2");
    assert_eq!(b.shape().len(), 2, "matmul_with rhs must be rank-2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_with inner dimensions {k} vs {k2}");

    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            let brow = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += multiplier.multiply(av, bv);
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Transpose a rank-2 tensor.
///
/// # Panics
///
/// Panics if `t` is not rank-2.
pub fn transpose2d(t: &Tensor) -> Tensor {
    assert_eq!(t.shape().len(), 2, "transpose2d expects rank-2");
    let (m, n) = (t.shape()[0], t.shape()[1]);
    let mut out = vec![0.0f32; m * n];
    let d = t.data();
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = d[i * n + j];
        }
    }
    Tensor::from_vec(out, &[n, m])
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_arith::{ExactMultiplier, MultiplierKind};
    use da_tensor::ops::matmul;
    use rand::SeedableRng;

    #[test]
    fn exact_multiplier_reproduces_native_matmul() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let b = Tensor::randn(&[6, 3], 1.0, &mut rng);
        let want = matmul(&a, &b);
        let got = matmul_with(&ExactMultiplier, &a, &b);
        for (x, y) in got.data().iter().zip(want.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn ax_fpm_matmul_inflates_positive_products() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = Tensor::rand_uniform(&[3, 5], 0.1, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[5, 2], 0.1, 1.0, &mut rng);
        let ax = MultiplierKind::AxFpm.build();
        let approx = matmul_with(&*ax, &a, &b);
        let exact = matmul(&a, &b);
        for (x, y) in approx.data().iter().zip(exact.data()) {
            assert!(x >= y, "positive accumulations must inflate: {x} vs {y}");
        }
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = Tensor::randn(&[3, 7], 1.0, &mut rng);
        assert_eq!(transpose2d(&transpose2d(&t)), t);
        assert_eq!(transpose2d(&t).shape(), &[7, 3]);
    }
}
