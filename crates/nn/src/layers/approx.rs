//! Inner-product kernels routed through a pluggable multiplier.
//!
//! Additions stay exact — the paper approximates only the multiplier (§4.1),
//! the dominant power consumer of the convolution datapath.
//!
//! # The batched GEMM
//!
//! [`gemm_with`] is the hot path every approximate layer runs on: a blocked,
//! cache-tiled GEMM whose inner loops call the slice-level arithmetic
//! backend ([`da_arith::BatchKernel`]) instead of making one virtual call
//! per MAC. Each worker thread gets its own kernel, so gate-level
//! multipliers (HEAP, ablation wirings) memoize repeated significand pairs
//! across the whole tile sweep without synchronization. The function is
//! generic over the multiplier: instantiated with
//! [`da_arith::ExactMultiplier`] the inner loop compiles to the native
//! multiply-add loop; instantiated with `dyn Multiplier` (the layer-boundary
//! case, via [`matmul_with`]) dispatch happens once per row-slice, not per
//! element.
//!
//! [`matmul_with_scalar`] keeps the seed's one-virtual-call-per-MAC loop as
//! the bit-exactness reference: `gemm_with` must (and is property-tested to)
//! reproduce it to the last ULP for every [`da_arith::MultiplierKind`],
//! because both accumulate each output element over `k` in the same order.

use da_arith::Multiplier;
use da_tensor::parallel::par_map_chunks_with;
use da_tensor::Tensor;

/// Column-tile width of the blocked GEMM: one `f32` output tile plus the
/// matching B-row tile stay resident in L1 while `k` streams.
const TILE_COLS: usize = 256;

/// Below this many MACs the GEMM runs single-threaded with one shared
/// kernel (thread spawn costs more than it saves, and a single memo cache
/// sees every repeated operand pair).
const PAR_MIN_MACS: usize = 1 << 15;

/// `A · B` where every scalar product goes through `multiplier`, on the
/// batched backend.
///
/// Shapes as in [`da_tensor::ops::matmul`]: `A: [m, k]`, `B: [k, n]`.
/// This is the `dyn`-boundary convenience wrapper over [`gemm_with`] used by
/// layers holding an `Arc<dyn Multiplier>`.
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
///
/// # Examples
///
/// ```
/// use da_arith::ExactMultiplier;
/// use da_nn::layers::matmul_with;
/// use da_tensor::{ops::matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![0.5, 1.0, -1.0, 2.0], &[2, 2]);
/// assert_eq!(matmul_with(&ExactMultiplier, &a, &b), matmul(&a, &b));
/// ```
pub fn matmul_with(multiplier: &dyn Multiplier, a: &Tensor, b: &Tensor) -> Tensor {
    gemm_with(multiplier, a, b)
}

/// The blocked, cache-tiled GEMM over the slice-level arithmetic backend.
///
/// Monomorphizes over `M`, so concrete multiplier types get statically
/// dispatched inner loops. Output rows are distributed over the scoped
/// thread pool for large products; each worker reuses one
/// [`da_arith::BatchKernel`] (and thus one significand memo cache) across
/// all its tiles. Per output element the `k` accumulation order matches
/// [`matmul_with_scalar`], so results are bit-identical for any multiplier.
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
pub fn gemm_with<M: Multiplier + ?Sized>(multiplier: &M, a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "matmul_with lhs must be rank-2");
    assert_eq!(b.shape().len(), 2, "matmul_with rhs must be rank-2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_with inner dimensions {k} vs {k2}");

    let mut out = vec![0.0f32; m * n];
    if n == 0 {
        // Zero-width result: nothing to compute (and chunking by 0 would
        // panic below).
        return Tensor::from_vec(out, &[m, n]);
    }
    let ad = a.data();
    let bd = b.data();
    let chunk = TILE_ROWS * n;

    // Classify every B tile once per GEMM (one linear pass over B): each
    // row block then hands the kernel a precomputed `RowClass` instead of
    // re-scanning the shared tile per sweep. Classification goes through
    // the kernel (`classify_rhs`), which knows the cheapest scan its sweeps
    // can accept; classes are position-pure, so this cannot change results
    // — only skip redundant scans.
    let classifier = multiplier.batch_kernel();
    let tiles = n.div_ceil(TILE_COLS);
    let mut classes = Vec::with_capacity(k * tiles);
    for kk in 0..k {
        for jb in (0..n).step_by(TILE_COLS) {
            let je = (jb + TILE_COLS).min(n);
            classes.push(classifier.classify_rhs(&bd[kk * n + jb..kk * n + je]));
        }
    }
    drop(classifier);
    let classes = &classes[..];

    if m > 1 && m * k * n >= PAR_MIN_MACS {
        par_map_chunks_with(
            &mut out,
            chunk,
            || multiplier.batch_kernel(),
            |kernel, idx, opiece| {
                gemm_rows(&mut **kernel, ad, bd, classes, k, n, idx * TILE_ROWS, opiece)
            },
        );
    } else {
        let mut kernel = multiplier.batch_kernel();
        for (idx, opiece) in out.chunks_mut(chunk).enumerate() {
            gemm_rows(&mut *kernel, ad, bd, classes, k, n, idx * TILE_ROWS, opiece);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Rows handled per GEMM chunk: each B tile loaded into L1 is reused across
/// this many output rows before the `k` sweep moves on.
const TILE_ROWS: usize = 4;

/// One row block of the blocked GEMM: for each column tile, sweep `k` and
/// feed every resident output row through the kernel's
/// [`da_arith::BatchKernel::axpy_classified`] with the tile's precomputed
/// [`da_arith::RowClass`], so closed-form kernels go straight to the
/// class-matched lane sweep while the B tile is hot. Per output element the
/// `k` order is ascending — the bit-exactness invariant.
fn gemm_rows<'k>(
    kernel: &mut (dyn da_arith::BatchKernel + 'k),
    ad: &[f32],
    bd: &[f32],
    classes: &[da_arith::RowClass],
    k: usize,
    n: usize,
    row0: usize,
    opiece: &mut [f32],
) {
    let rows = opiece.len() / n;
    let tiles = n.div_ceil(TILE_COLS);
    for (jb_idx, jb) in (0..n).step_by(TILE_COLS).enumerate() {
        let je = (jb + TILE_COLS).min(n);
        for kk in 0..k {
            let btile = &bd[kk * n + jb..kk * n + je];
            let class = classes[kk * tiles + jb_idx];
            for r in 0..rows {
                let av = ad[(row0 + r) * k + kk];
                kernel.axpy_classified(av, btile, class, &mut opiece[r * n + jb..r * n + je]);
            }
        }
    }
}

/// The seed's per-scalar reference: one [`Multiplier::multiply`] virtual
/// call per MAC.
///
/// Kept as the semantic definition the batched [`gemm_with`] is verified
/// against (property tests) and as the baseline of the GEMM throughput
/// bench. Not used by any layer.
///
/// # Panics
///
/// Panics on rank or inner-dimension mismatch.
pub fn matmul_with_scalar(multiplier: &dyn Multiplier, a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "matmul_with lhs must be rank-2");
    assert_eq!(b.shape().len(), 2, "matmul_with rhs must be rank-2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_with inner dimensions {k} vs {k2}");

    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            let brow = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = da_arith::simd::nan_stable_add(*o, multiplier.multiply(av, bv));
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Transpose a rank-2 tensor.
///
/// # Panics
///
/// Panics if `t` is not rank-2.
pub fn transpose2d(t: &Tensor) -> Tensor {
    assert_eq!(t.shape().len(), 2, "transpose2d expects rank-2");
    let (m, n) = (t.shape()[0], t.shape()[1]);
    let mut out = vec![0.0f32; m * n];
    let d = t.data();
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = d[i * n + j];
        }
    }
    Tensor::from_vec(out, &[n, m])
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_arith::{ExactMultiplier, MultiplierKind};
    use da_tensor::ops::matmul;
    use rand::SeedableRng;

    #[test]
    fn exact_multiplier_reproduces_native_matmul() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let b = Tensor::randn(&[6, 3], 1.0, &mut rng);
        let want = matmul(&a, &b);
        let got = matmul_with(&ExactMultiplier, &a, &b);
        for (x, y) in got.data().iter().zip(want.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn ax_fpm_matmul_inflates_positive_products() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = Tensor::rand_uniform(&[3, 5], 0.1, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[5, 2], 0.1, 1.0, &mut rng);
        let ax = MultiplierKind::AxFpm.build();
        let approx = matmul_with(&*ax, &a, &b);
        let exact = matmul(&a, &b);
        for (x, y) in approx.data().iter().zip(exact.data()) {
            assert!(x >= y, "positive accumulations must inflate: {x} vs {y}");
        }
    }

    /// The batched GEMM equals the per-scalar reference bit for bit, across
    /// every multiplier kind and a shape sweep covering ragged tiles and
    /// the parallel threshold. (The adversarial-input sweep lives in
    /// `tests/gemm_equivalence.rs`.)
    #[test]
    fn gemm_matches_scalar_reference_bitwise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for kind in MultiplierKind::ALL {
            let m = kind.build();
            for (mm, kk, nn) in [(1usize, 1usize, 1usize), (3, 7, 5), (8, 16, 13)] {
                let a = Tensor::randn(&[mm, kk], 1.0, &mut rng);
                let b = Tensor::randn(&[kk, nn], 1.0, &mut rng);
                let batched = gemm_with(&*m, &a, &b);
                let reference = matmul_with_scalar(&*m, &a, &b);
                for (i, (x, y)) in batched.data().iter().zip(reference.data()).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "{kind} {mm}x{kk}x{nn} elem {i}");
                }
            }
        }
    }

    /// Monomorphized exact GEMM crosses the parallel threshold and still
    /// matches the native matmul bitwise on dense random data.
    #[test]
    fn monomorphized_exact_gemm_matches_ops_matmul() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = Tensor::randn(&[37, 41], 1.0, &mut rng);
        let b = Tensor::randn(&[41, 29], 1.0, &mut rng);
        let got = gemm_with(&ExactMultiplier, &a, &b);
        let want = matmul(&a, &b);
        for (x, y) in got.data().iter().zip(want.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = Tensor::randn(&[3, 7], 1.0, &mut rng);
        assert_eq!(transpose2d(&transpose2d(&t)), t);
        assert_eq!(transpose2d(&t).shape(), &[7, 3]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn gemm_rejects_dimension_mismatch() {
        let _ = gemm_with(&ExactMultiplier, &Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    /// Regression: zero-width operands (constructible via `from_vec`) yield
    /// an empty result instead of panicking in the chunked row loop.
    #[test]
    fn gemm_handles_zero_width_rhs() {
        let a = Tensor::zeros(&[3, 4]);
        let b = Tensor::from_vec(Vec::new(), &[4, 0]);
        for kind in MultiplierKind::ALL {
            let c = gemm_with(&*kind.build(), &a, &b);
            assert_eq!(c.shape(), &[3, 0], "{kind}");
            assert!(c.data().is_empty());
        }
    }
}
