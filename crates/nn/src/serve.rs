//! Cross-request micro-batching: the serving front end over compiled
//! [`InferencePlan`]s.
//!
//! The engine ([`crate::engine`]) made one process fast; this module makes
//! that process *serve*: many concurrent callers submit single samples, a
//! [`BatchServer`] coalesces them into batches and executes them on a shard
//! pool of [`InferencePlan`] replicas — one plan per worker thread, so each
//! worker reuses its own pooled workspace arenas without contending (at the
//! cost of one prepared-weight snapshot per worker).
//!
//! # The batching contract
//!
//! * **Bit-identity.** Defensive Approximation's perturbation is *the
//!   arithmetic itself* (paper §4), so a sample's logits must not depend on
//!   which requests it happened to share a batch with. [`InferencePlan`]
//!   runs batch items independently (per-item reduction order, operand
//!   order, and special-value branches are all pinned to the per-layer
//!   reference), so logits returned by [`BatchServer::submit`] are
//!   bit-identical to a serial [`InferencePlan::predict_batch`] on the same
//!   sample — for every [`da_arith::MultiplierKind`], under any concurrent
//!   schedule. `crates/nn/tests/serve_conformance.rs` property-tests this
//!   under adversarial scheduling (tiny `max_batch`, zero deadline,
//!   queue-full backpressure).
//! * **Ordering.** The queue is FIFO: workers always dispatch the oldest
//!   pending request first, extending the batch with the longest prefix of
//!   same-shape requests (up to [`ServeConfig::max_batch`]). Responses
//!   travel on per-request channels, so callers never observe each other.
//! * **Batch formation.** A worker that finds fewer than `max_batch`
//!   requests queued waits up to [`ServeConfig::flush_deadline`] (a
//!   [`Condvar`] timeout) for more to arrive, then flushes whatever is
//!   there. A zero deadline dispatches immediately — batches still form
//!   opportunistically whenever submitters outpace workers.
//! * **Backpressure.** The queue holds at most
//!   [`ServeConfig::queue_capacity`] requests. [`BatchServer::submit`]
//!   blocks until space frees up; [`BatchServer::try_submit`] returns
//!   [`ServeError::QueueFull`] instead.
//! * **Failure containment.** A request that cannot execute (e.g. a shape
//!   the plan rejects) fails *its batch* with [`ServeError::Execution`];
//!   the worker survives and keeps serving subsequent requests.
//! * **Snapshot semantics.** Replicas snapshot the network at
//!   [`BatchServer::compile`] time, exactly like [`Network::plan`].
//!   Mutating the network afterwards (`set_multiplier`, `params_mut`, a
//!   training forward) invalidates the network's own cached plan but *not*
//!   the server's replicas: the server keeps serving the snapshot, and
//!   [`BatchServer::is_stale`] reports the divergence (via
//!   [`Network::plan_epoch`]) so operators can rebuild.
//!
//! Servers can also shard **int8 plans**
//! ([`BatchServer::compile_quantized`]): the queue, batching, backpressure,
//! and failure-containment machinery is plan-agnostic, and quantized plans
//! are deterministic with independent batch items, so the bit-identity
//! contract holds against a serial run of the same quantized plan.
//!
//! # Quickstart
//!
//! ```
//! use da_arith::MultiplierKind;
//! use da_nn::serve::{BatchServer, ServeConfig};
//! use da_nn::zoo::lenet5;
//! use da_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = lenet5(10, &mut rng);
//! net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
//! let server = BatchServer::compile(&net, ServeConfig::default())
//!     .expect("zoo models compile");
//! // Submit from any number of threads; each caller gets its own logits.
//! let pending = server.submit(&Tensor::zeros(&[1, 28, 28])).unwrap();
//! let logits = pending.wait().unwrap();
//! assert_eq!(logits.shape(), &[10]);
//! assert!(!server.is_stale(&net));
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use da_tensor::Tensor;

use crate::engine::InferencePlan;
use crate::loss::argmax_logits;
use crate::Network;

/// Micro-batching knobs for a [`BatchServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning one [`InferencePlan`] replica.
    ///
    /// `0` builds an accept-only server (requests queue but never execute)
    /// — useful for deterministic backpressure/shutdown tests; production
    /// servers want at least 1.
    pub workers: usize,
    /// Most samples a worker dispatches as one batch (≥ 1).
    pub max_batch: usize,
    /// How long a worker holding fewer than `max_batch` requests waits for
    /// the batch to fill before flushing. Zero dispatches immediately.
    pub flush_deadline: Duration,
    /// Most requests queued at once (≥ 1); beyond it, [`BatchServer::submit`]
    /// blocks and [`BatchServer::try_submit`] fails.
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ServeConfig {
            workers,
            max_batch: 8,
            flush_deadline: Duration::from_micros(200),
            queue_capacity: workers.max(1) * 16,
        }
    }
}

/// Why a request could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The server is shutting down (or already has); the request was not
    /// executed.
    ShuttingDown,
    /// [`BatchServer::try_submit`] found the queue at capacity.
    QueueFull,
    /// The plan rejected the batch (panic message from the execution path,
    /// e.g. a shape mismatch). Other requests are unaffected.
    Execution(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShuttingDown => write!(f, "batch server is shutting down"),
            ServeError::QueueFull => write!(f, "batch server queue is full"),
            ServeError::Execution(msg) => write!(f, "batch execution failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A submitted request's logits: flattened data plus the per-item shape.
type Reply = (Vec<f32>, Vec<usize>);

/// One queued inference request.
struct Request {
    data: Vec<f32>,
    shape: Vec<usize>,
    reply: mpsc::Sender<Result<Reply, ServeError>>,
}

/// Queue state behind the server's mutex.
struct QueueState {
    queue: VecDeque<Request>,
    shutdown: bool,
}

/// Monotonic serving counters (all `Relaxed`; read via [`ServeStats`]).
#[derive(Default)]
struct Counters {
    batches: AtomicU64,
    items: AtomicU64,
    largest_batch: AtomicU64,
    failed_batches: AtomicU64,
}

/// State shared between submitters and workers.
struct Shared {
    state: Mutex<QueueState>,
    /// Workers wait here for requests (and for batches to fill).
    not_empty: Condvar,
    /// Blocked submitters wait here for queue space.
    space: Condvar,
    counters: Counters,
}

/// A snapshot of the server's serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Batches dispatched to plan replicas.
    pub batches: u64,
    /// Samples served (successfully executed).
    pub items: u64,
    /// Largest batch dispatched so far.
    pub largest_batch: u64,
    /// Batches that failed execution (every member got
    /// [`ServeError::Execution`]).
    pub failed_batches: u64,
}

impl ServeStats {
    /// Mean samples per dispatched batch (0 when nothing was served).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.items as f64 / self.batches as f64
        }
    }
}

/// An in-flight request handle returned by [`BatchServer::submit`].
#[must_use = "dropping a Pending discards the request's logits"]
pub struct Pending {
    rx: mpsc::Receiver<Result<Reply, ServeError>>,
}

impl Pending {
    /// Block until the request's batch executes and return the logits for
    /// this sample alone (shape `[classes...]`, no batch axis).
    pub fn wait(self) -> Result<Tensor, ServeError> {
        match self.rx.recv() {
            Ok(Ok((data, shape))) => Ok(Tensor::from_vec(data, &shape)),
            Ok(Err(e)) => Err(e),
            // The worker (or server) went away without replying.
            Err(mpsc::RecvError) => Err(ServeError::ShuttingDown),
        }
    }
}

/// A thread-based micro-batching front end over [`InferencePlan`] replicas
/// (see the module docs for the batching contract).
pub struct BatchServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    queue_capacity: usize,
    /// The source network's [`Network::plan_epoch`] at compile time.
    source_epoch: u64,
}

impl BatchServer {
    /// Compile one plan replica per worker from `network` and start serving.
    ///
    /// Returns `None` when the network has no compiled form (the same
    /// condition under which [`Network::plan`] returns `None`) — callers
    /// fall back to the per-layer path.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.queue_capacity` is zero.
    pub fn compile(network: &Network, config: ServeConfig) -> Option<BatchServer> {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be at least 1");
        // Read the epoch *before* compiling: a concurrent mutation mid-compile
        // then flags the server stale instead of going unnoticed.
        let source_epoch = network.plan_epoch();
        let replicas: Option<Vec<Arc<InferencePlan>>> = (0..config.workers.max(1))
            .map(|_| InferencePlan::compile(network, network.multiplier().cloned()).map(Arc::new))
            .collect();
        let mut replicas = replicas?;
        replicas.truncate(config.workers);
        Self::start(replicas, config, source_epoch)
    }

    /// [`compile`](BatchServer::compile) in **int8 mode**: the shard pool
    /// serves one [`InferencePlan::compile_quantized`] plan, calibrated on
    /// `calibration`, shared by every worker. Quantized plans carry
    /// multi-MiB product tables (and, for gate-level multipliers, a
    /// 65 536-product build cost), so workers share one snapshot instead of
    /// replicating it — plans are `&self` to execute and workspaces are
    /// pooled per call, so sharing adds no contention beyond the pool lock.
    ///
    /// The batching contract is unchanged: quantized plans are
    /// deterministic and run batch items independently, so served logits
    /// stay bit-identical to a serial
    /// [`InferencePlan::predict_batch`] on the same plan under any
    /// concurrent schedule (covered by `tests/quantized_plan.rs`).
    ///
    /// Returns `None` when the network cannot compile to a quantized plan
    /// (see [`InferencePlan::compile_quantized`]).
    ///
    /// # Panics
    ///
    /// Panics as [`compile`](BatchServer::compile) does, or if
    /// `calibration` is not a non-empty batch of the served shape.
    pub fn compile_quantized(
        network: &Network,
        calibration: &da_tensor::Tensor,
        config: ServeConfig,
    ) -> Option<BatchServer> {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be at least 1");
        let source_epoch = network.plan_epoch();
        let plan = Arc::new(InferencePlan::compile_quantized(
            network,
            network.multiplier().cloned(),
            calibration,
        )?);
        let replicas = vec![plan; config.workers];
        Self::start(replicas, config, source_epoch)
    }

    /// [`compile_quantized`](BatchServer::compile_quantized) in
    /// **int4-weight mode**: the shared snapshot is one
    /// [`InferencePlan::compile_quantized_int4`] plan — conv/dense layers
    /// serve the in-register shuffle GEMM over 256×16 tables where
    /// calibration allows, with per-layer int8 gather fallback (a
    /// mixed-precision snapshot; see [`InferencePlan::int4_layer_mix`]).
    /// The sharing rationale and the bit-identical batching contract are
    /// exactly [`compile_quantized`](BatchServer::compile_quantized)'s.
    ///
    /// Returns `None` when the network cannot compile to a quantized plan.
    ///
    /// # Panics
    ///
    /// Panics as [`compile_quantized`](BatchServer::compile_quantized) does.
    pub fn compile_quantized_int4(
        network: &Network,
        calibration: &da_tensor::Tensor,
        config: ServeConfig,
    ) -> Option<BatchServer> {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be at least 1");
        let source_epoch = network.plan_epoch();
        let plan = Arc::new(InferencePlan::compile_quantized_int4(
            network,
            network.multiplier().cloned(),
            calibration,
        )?);
        let replicas = vec![plan; config.workers];
        Self::start(replicas, config, source_epoch)
    }

    /// Serve an already-compiled (or snapshot-loaded) plan: every worker
    /// shards the same `Arc`, so a plan whose tables borrow an `mmap`ed
    /// snapshot is served by N workers over **one** mapping — no per-worker
    /// copy of the multi-MiB product tables or weight matrices.
    ///
    /// A plan served this way has no source [`Network`], so
    /// [`is_stale`](BatchServer::is_stale) reports `true` against *any*
    /// network (the sentinel epoch `u64::MAX` is never a real
    /// [`Network::plan_epoch`] value): staleness tracking is only
    /// meaningful for the `compile*` constructors.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.queue_capacity` is zero.
    pub fn from_plan(plan: Arc<InferencePlan>, config: ServeConfig) -> BatchServer {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be at least 1");
        let replicas = vec![plan; config.workers];
        Self::start(replicas, config, u64::MAX).expect("start never fails")
    }

    /// Map the plan snapshot at `path` (see [`crate::snapshot`]) and serve
    /// it via [`from_plan`](BatchServer::from_plan). This is the
    /// near-zero-cold-start path: no calibration, no LUT build, no weight
    /// copy — time-to-first-inference is dominated by the first batch
    /// itself.
    ///
    /// # Panics
    ///
    /// Panics as [`from_plan`](BatchServer::from_plan) does.
    pub fn from_snapshot(
        path: impl AsRef<std::path::Path>,
        config: ServeConfig,
    ) -> Result<BatchServer, crate::snapshot::SnapshotError> {
        let plan = Arc::new(InferencePlan::load(path)?);
        Ok(Self::from_plan(plan, config))
    }

    /// Shared startup: install the panic hook and spawn one worker per plan
    /// replica. `source_epoch` is the network's
    /// [`Network::plan_epoch`] read *before* compiling, so a concurrent
    /// mutation mid-compile flags the server stale instead of going
    /// unnoticed.
    fn start(
        mut replicas: Vec<Arc<InferencePlan>>,
        config: ServeConfig,
        source_epoch: u64,
    ) -> Option<BatchServer> {
        install_quiet_panic_hook();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { queue: VecDeque::new(), shutdown: false }),
            not_empty: Condvar::new(),
            space: Condvar::new(),
            counters: Counters::default(),
        });
        let workers = replicas
            .drain(..)
            .enumerate()
            .map(|(i, plan)| {
                let shared = shared.clone();
                let (max_batch, deadline) = (config.max_batch, config.flush_deadline);
                std::thread::Builder::new()
                    .name(format!("da-serve-{i}"))
                    .spawn(move || worker_loop(plan, shared, max_batch, deadline))
                    .expect("spawn serve worker")
            })
            .collect();
        Some(BatchServer { shared, workers, queue_capacity: config.queue_capacity, source_epoch })
    }

    /// Queue one sample (`[C, H, W]` or `[features...]`, *no* batch axis),
    /// blocking while the queue is at capacity.
    ///
    /// Returns [`ServeError::ShuttingDown`] if the server stopped accepting
    /// requests while this call was blocked.
    pub fn submit(&self, item: &Tensor) -> Result<Pending, ServeError> {
        self.enqueue(item, true)
    }

    /// Non-blocking [`submit`](BatchServer::submit): fails with
    /// [`ServeError::QueueFull`] instead of waiting for queue space.
    pub fn try_submit(&self, item: &Tensor) -> Result<Pending, ServeError> {
        self.enqueue(item, false)
    }

    fn enqueue(&self, item: &Tensor, block: bool) -> Result<Pending, ServeError> {
        let rx;
        {
            let mut st = self.shared.state.lock().expect("serve queue lock");
            loop {
                if st.shutdown {
                    return Err(ServeError::ShuttingDown);
                }
                if st.queue.len() < self.queue_capacity {
                    break;
                }
                if !block {
                    return Err(ServeError::QueueFull);
                }
                st = self.shared.space.wait(st).expect("serve queue lock");
            }
            // Build the request only once admission is certain, so rejected
            // `try_submit`s never pay the sample copy; the copy is µs-scale,
            // cheap enough to do under the lock.
            let (tx, receiver) = mpsc::channel();
            rx = receiver;
            st.queue.push_back(Request {
                data: item.data().to_vec(),
                shape: item.shape().to_vec(),
                reply: tx,
            });
        }
        // Wake every waiting worker: one will dispatch, the rest re-check
        // (workers also wait here for partial batches to fill).
        self.shared.not_empty.notify_all();
        Ok(Pending { rx })
    }

    /// Logits for one sample: [`submit`](BatchServer::submit) + wait.
    pub fn logits(&self, item: &Tensor) -> Result<Tensor, ServeError> {
        self.submit(item)?.wait()
    }

    /// Predicted class for one sample (the shared
    /// [`crate::loss::argmax_logits`] tie behavior).
    pub fn predict(&self, item: &Tensor) -> Result<usize, ServeError> {
        Ok(argmax_logits(self.logits(item)?.data()))
    }

    /// Serve a whole `[N, ...]` batch *through the request queue*: every
    /// item becomes one submission (interleaving freely with concurrent
    /// callers), and the rows are reassembled in submission order.
    /// Bit-identical to [`InferencePlan::predict_batch`] on a replica.
    ///
    /// # Panics
    ///
    /// Panics if any item fails ([`ServeError`]) — mirroring the panics of
    /// the underlying plan — or if called on a server with no workers.
    pub fn predict_batch(&self, x: &Tensor) -> Tensor {
        assert!(x.shape().len() >= 2, "predict_batch expects a batched [N, ...] input");
        assert!(!self.workers.is_empty(), "predict_batch needs at least one worker");
        let n = x.shape()[0];
        let pending: Vec<Pending> = (0..n)
            .map(|i| self.submit(&x.batch_item(i)).expect("batch server accepting"))
            .collect();
        let mut rows: Vec<Tensor> = Vec::with_capacity(n);
        for (i, p) in pending.into_iter().enumerate() {
            match p.wait() {
                Ok(t) => rows.push(t),
                Err(e) => panic!("batch server failed item {i}: {e}"),
            }
        }
        Tensor::stack(&rows)
    }

    /// Whether `network` has been invalidated since this server compiled its
    /// replicas (weights, multiplier, or training-mode statistics changed).
    ///
    /// A stale server keeps serving its compile-time snapshot — exactly like
    /// a held [`Arc`]`<`[`InferencePlan`]`>` — so callers decide when to
    /// rebuild. Only meaningful for the network the server was compiled
    /// from.
    pub fn is_stale(&self, network: &Network) -> bool {
        network.plan_epoch() != self.source_epoch
    }

    /// Worker-thread count (plan replicas).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        ServeStats {
            batches: c.batches.load(Ordering::Relaxed),
            items: c.items.load(Ordering::Relaxed),
            largest_batch: c.largest_batch.load(Ordering::Relaxed),
            failed_batches: c.failed_batches.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting requests without blocking: submitters (including ones
    /// currently blocked on backpressure) fail with
    /// [`ServeError::ShuttingDown`], and workers exit once the queue
    /// drains. Dropping the server still joins the workers.
    pub fn begin_shutdown(&self) {
        {
            let mut st = self.shared.state.lock().expect("serve queue lock");
            st.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.space.notify_all();
    }

    /// Stop accepting requests, drain the queue, and join the workers
    /// (equivalent to dropping the server, but explicit at call sites).
    pub fn shutdown(self) {}
}

impl Drop for BatchServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Workers drain the queue before exiting; with zero workers (or if a
        // worker thread died), fail whatever is left.
        let mut st = self.shared.state.lock().expect("serve queue lock");
        for request in st.queue.drain(..) {
            let _ = request.reply.send(Err(ServeError::ShuttingDown));
        }
    }
}

impl std::fmt::Debug for BatchServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchServer")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.queue_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

/// One worker: wait for requests, form a batch (FIFO, same-shape prefix, up
/// to `max_batch`, holding up to `deadline` for it to fill), execute it on
/// this worker's plan replica, and reply per request.
fn worker_loop(
    plan: Arc<InferencePlan>,
    shared: Arc<Shared>,
    max_batch: usize,
    deadline: Duration,
) {
    loop {
        let batch: Vec<Request> = {
            let mut st = shared.state.lock().expect("serve queue lock");
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = shared.not_empty.wait(st).expect("serve queue lock");
            }
            if !deadline.is_zero() && st.queue.len() < max_batch && !st.shutdown {
                let until = Instant::now() + deadline;
                loop {
                    let now = Instant::now();
                    if st.queue.len() >= max_batch || st.shutdown || now >= until {
                        break;
                    }
                    let (guard, _timeout) =
                        shared.not_empty.wait_timeout(st, until - now).expect("serve queue lock");
                    st = guard;
                }
            }
            // Another worker may have drained the queue while this one slept.
            if st.queue.is_empty() {
                continue;
            }
            let shape = st.queue.front().expect("non-empty queue").shape.clone();
            let take = st
                .queue
                .iter()
                .take(max_batch)
                .take_while(|request| request.shape == shape)
                .count();
            let drained: Vec<Request> = st.queue.drain(..take).collect();
            drop(st);
            shared.space.notify_all();
            drained
        };
        run_batch(&plan, batch, &shared.counters);
    }
}

std::thread_local! {
    /// Set while a worker executes a plan, so the panic hook stays silent
    /// for the *anticipated* failure path (shape rejections become
    /// [`ServeError::Execution`], not log spam). Thread-local: panics on
    /// every other thread still print normally.
    static IN_PLAN_EXECUTION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once per process) a panic hook that defers to the previous hook
/// except while this thread is inside [`run_batch`]'s `catch_unwind`.
fn install_quiet_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_PLAN_EXECUTION.with(|flag| flag.get()) {
                previous(info);
            }
        }));
    });
}

/// Stack a same-shape batch, run it, and scatter the logits rows back to the
/// per-request channels. A panic in the plan (shape mismatch) fails every
/// member of this batch but leaves the worker serving.
fn run_batch(plan: &InferencePlan, batch: Vec<Request>, counters: &Counters) {
    let n = batch.len();
    let item_len = batch[0].data.len();
    let mut data = Vec::with_capacity(n * item_len);
    for request in &batch {
        data.extend_from_slice(&request.data);
    }
    let mut shape = vec![n];
    shape.extend_from_slice(&batch[0].shape);
    let input = Tensor::from_vec(data, &shape);

    IN_PLAN_EXECUTION.with(|flag| flag.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| plan.predict_batch(&input)));
    IN_PLAN_EXECUTION.with(|flag| flag.set(false));
    match result {
        Ok(logits) => {
            // Count before replying: a caller that has already received its
            // logits must see them reflected in `stats()`.
            counters.batches.fetch_add(1, Ordering::Relaxed);
            counters.items.fetch_add(n as u64, Ordering::Relaxed);
            counters.largest_batch.fetch_max(n as u64, Ordering::Relaxed);
            let out_shape: Vec<usize> = logits.shape()[1..].to_vec();
            let out_len: usize = out_shape.iter().product();
            for (i, request) in batch.iter().enumerate() {
                let row = logits.data()[i * out_len..(i + 1) * out_len].to_vec();
                // A dropped Pending is not an error; ignore send failures.
                let _ = request.reply.send(Ok((row, out_shape.clone())));
            }
        }
        Err(payload) => {
            counters.failed_batches.fetch_add(1, Ordering::Relaxed);
            let msg = panic_message(payload);
            for request in batch {
                let _ = request.reply.send(Err(ServeError::Execution(msg.clone())));
            }
        }
    }
}

/// Best-effort text of a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use da_arith::MultiplierKind;
    use rand::SeedableRng;

    fn tiny_cnn(seed: u64) -> Network {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Network::new("serve-tiny")
            .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
            .push(Relu)
            .push(MaxPool2d::new(2, 2))
            .push(Flatten)
            .push(Dense::new(3 * 4 * 4, 5, &mut rng))
    }

    fn cfg(workers: usize, max_batch: usize, cap: usize) -> ServeConfig {
        ServeConfig { workers, max_batch, flush_deadline: Duration::ZERO, queue_capacity: cap }
    }

    #[test]
    fn single_submission_matches_plan() {
        let mut net = tiny_cnn(3);
        net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
        let plan = net.plan().expect("compilable");
        let server = BatchServer::compile(&net, cfg(2, 4, 8)).expect("compilable");
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let x = Tensor::randn(&[1, 8, 8], 1.0, &mut rng);
        let got = server.logits(&x).expect("served");
        let want = plan.predict_batch(&Tensor::stack(std::slice::from_ref(&x)));
        assert_eq!(got.data(), want.data());
        assert_eq!(got.shape(), &[5]);
        assert_eq!(server.predict(&x).unwrap(), plan.predict(&Tensor::stack(&[x]))[0]);
    }

    #[test]
    fn predict_batch_round_trips_through_the_queue() {
        let net = tiny_cnn(5);
        let plan = net.plan().expect("compilable");
        let server = BatchServer::compile(&net, cfg(2, 3, 4)).expect("compilable");
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let x = Tensor::randn(&[7, 1, 8, 8], 1.0, &mut rng);
        let got = server.predict_batch(&x);
        let want = plan.predict_batch(&x);
        assert_eq!(got, want);
        let stats = server.stats();
        assert_eq!(stats.items, 7);
        assert!(stats.batches >= 1 && stats.batches <= 7, "{stats:?}");
        assert!(stats.mean_batch() >= 1.0);
    }

    #[test]
    fn zero_worker_server_applies_backpressure_and_fails_on_shutdown() {
        let net = tiny_cnn(7);
        let server = BatchServer::compile(&net, cfg(0, 1, 2)).expect("compilable");
        let x = Tensor::zeros(&[1, 8, 8]);
        let a = server.try_submit(&x).expect("first fits");
        let b = server.try_submit(&x).expect("second fits");
        assert_eq!(server.try_submit(&x).err(), Some(ServeError::QueueFull));
        server.shutdown();
        assert_eq!(a.wait().err(), Some(ServeError::ShuttingDown));
        assert_eq!(b.wait().err(), Some(ServeError::ShuttingDown));
    }

    #[test]
    fn uncompilable_network_declines() {
        struct Opaque;
        impl crate::Layer for Opaque {
            fn name(&self) -> &'static str {
                "opaque"
            }
            fn forward(&self, x: &Tensor, _mode: crate::Mode) -> (Tensor, crate::Cache) {
                (x.clone(), crate::Cache::none())
            }
            fn backward(&self, _cache: &crate::Cache, grad: &Tensor) -> (Tensor, Vec<Tensor>) {
                (grad.clone(), Vec::new())
            }
        }
        let net = Network::new("opaque").push(Opaque);
        assert!(BatchServer::compile(&net, cfg(1, 1, 1)).is_none());
        assert!(BatchServer::compile(&net, cfg(0, 1, 1)).is_none());
    }

    #[test]
    fn config_default_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.max_batch >= 1);
        assert!(cfg.queue_capacity >= cfg.workers);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ServeError::QueueFull.to_string().contains("full"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting down"));
        assert!(ServeError::Execution("boom".into()).to_string().contains("boom"));
    }
}
