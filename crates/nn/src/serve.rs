//! Cross-request micro-batching: the serving front end over compiled
//! [`InferencePlan`]s.
//!
//! The engine ([`crate::engine`]) made one process fast; this module makes
//! that process *serve*: many concurrent callers submit single samples, a
//! [`BatchServer`] coalesces them into batches and executes them on a shard
//! pool of [`InferencePlan`] replicas — one plan per worker thread, so each
//! worker reuses its own pooled workspace arenas without contending (at the
//! cost of one prepared-weight snapshot per worker).
//!
//! # The batching contract
//!
//! * **Bit-identity.** Defensive Approximation's perturbation is *the
//!   arithmetic itself* (paper §4), so a sample's logits must not depend on
//!   which requests it happened to share a batch with. [`InferencePlan`]
//!   runs batch items independently (per-item reduction order, operand
//!   order, and special-value branches are all pinned to the per-layer
//!   reference), so logits returned by [`BatchServer::submit`] are
//!   bit-identical to a serial [`InferencePlan::predict_batch`] on the same
//!   sample — for every [`da_arith::MultiplierKind`], under any concurrent
//!   schedule. `crates/nn/tests/serve_conformance.rs` property-tests this
//!   under adversarial scheduling (tiny `max_batch`, zero deadline,
//!   queue-full backpressure).
//! * **Ordering.** The queue is FIFO: workers always dispatch the oldest
//!   pending request first, extending the batch with the longest prefix of
//!   same-shape requests (up to [`ServeConfig::max_batch`]). Responses
//!   travel on per-request channels, so callers never observe each other.
//! * **Batch formation.** A worker that finds fewer than `max_batch`
//!   requests queued waits up to [`ServeConfig::flush_deadline`] (a
//!   [`Condvar`] timeout) for more to arrive, then flushes whatever is
//!   there. A zero deadline dispatches immediately — batches still form
//!   opportunistically whenever submitters outpace workers.
//! * **Backpressure.** The queue holds at most
//!   [`ServeConfig::queue_capacity`] requests. [`BatchServer::submit`]
//!   blocks until space frees up; [`BatchServer::try_submit`] returns
//!   [`ServeError::QueueFull`] instead.
//! * **Failure containment.** A request that cannot execute (e.g. a shape
//!   the plan rejects) fails *its batch* with [`ServeError::Execution`];
//!   the worker survives and keeps serving subsequent requests.
//! * **Snapshot semantics.** Replicas snapshot the network at
//!   [`BatchServer::compile`] time, exactly like [`Network::plan`].
//!   Mutating the network afterwards (`set_multiplier`, `params_mut`, a
//!   training forward) invalidates the network's own cached plan but *not*
//!   the server's replicas: the server keeps serving the snapshot, and
//!   [`BatchServer::is_stale`] reports the divergence (via
//!   [`Network::plan_epoch`]) so operators can rebuild.
//!
//! Servers can also shard **int8 plans**
//! ([`BatchServer::compile_quantized`]): the queue, batching, backpressure,
//! and failure-containment machinery is plan-agnostic, and quantized plans
//! are deterministic with independent batch items, so the bit-identity
//! contract holds against a serial run of the same quantized plan.
//!
//! # Quickstart
//!
//! ```
//! use da_arith::MultiplierKind;
//! use da_nn::serve::{BatchServer, ServeConfig};
//! use da_nn::zoo::lenet5;
//! use da_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = lenet5(10, &mut rng);
//! net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
//! let server = BatchServer::compile(&net, ServeConfig::default())
//!     .expect("zoo models compile");
//! // Submit from any number of threads; each caller gets its own logits.
//! let pending = server.submit(&Tensor::zeros(&[1, 28, 28])).unwrap();
//! let logits = pending.wait().unwrap();
//! assert_eq!(logits.shape(), &[10]);
//! assert!(!server.is_stale(&net));
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use da_tensor::Tensor;

use crate::engine::InferencePlan;
use crate::loss::argmax_logits;
use crate::Network;

/// Micro-batching knobs for a [`BatchServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning one [`InferencePlan`] replica.
    ///
    /// `0` builds an accept-only server (requests queue but never execute)
    /// — useful for deterministic backpressure/shutdown tests; production
    /// servers want at least 1.
    pub workers: usize,
    /// Most samples a worker dispatches as one batch (≥ 1).
    pub max_batch: usize,
    /// The *longest* a worker holding fewer than `max_batch` requests waits
    /// for the batch to fill before flushing. Zero dispatches immediately
    /// (and disables adaptation).
    ///
    /// The effective deadline is **adaptive** per worker: each batch that
    /// fills to `max_batch` before the deadline (the server is loaded and
    /// batches form on their own) halves the worker's current deadline down
    /// to [`flush_deadline_min`](ServeConfig::flush_deadline_min), bounding
    /// the wait tax on tail latency; each deadline-expired partial flush
    /// (traffic is sparse) doubles it back up to `flush_deadline`, giving
    /// stragglers a chance to coalesce. Set
    /// `flush_deadline_min == flush_deadline` for a fixed deadline.
    pub flush_deadline: Duration,
    /// Floor for the adaptive flush deadline under load (see
    /// [`flush_deadline`](ServeConfig::flush_deadline)). Values above
    /// `flush_deadline` are clamped to it.
    pub flush_deadline_min: Duration,
    /// Most requests queued at once (≥ 1); beyond it, [`BatchServer::submit`]
    /// blocks and [`BatchServer::try_submit`] fails.
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ServeConfig {
            workers,
            max_batch: 8,
            flush_deadline: Duration::from_micros(200),
            flush_deadline_min: Duration::from_micros(25),
            queue_capacity: workers.max(1) * 16,
        }
    }
}

/// Why a request could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The server is shutting down (or already has); the request was not
    /// executed.
    ShuttingDown,
    /// [`BatchServer::try_submit`] found the queue at capacity.
    QueueFull,
    /// The plan rejected the batch (panic message from the execution path,
    /// e.g. a shape mismatch). Other requests are unaffected.
    Execution(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShuttingDown => write!(f, "batch server is shutting down"),
            ServeError::QueueFull => write!(f, "batch server queue is full"),
            ServeError::Execution(msg) => write!(f, "batch execution failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A submitted request's logits: flattened data plus the per-item shape.
pub type Reply = (Vec<f32>, Vec<usize>);

/// Callback form of a reply destination (see
/// [`BatchServer::try_submit_with`]): invoked exactly once, on the worker
/// thread that executed (or failed) the request's batch.
pub type ReplyCallback = Box<dyn FnOnce(Result<Reply, ServeError>) + Send + 'static>;

/// Where a request's reply goes: the per-request channel behind
/// [`Pending`], or a caller-supplied callback (the socket front end routes
/// completions back into its reactor this way — a blocking `recv` has no
/// place on an event loop).
enum ReplySink {
    Channel(mpsc::Sender<Result<Reply, ServeError>>),
    Callback(ReplyCallback),
}

impl ReplySink {
    /// Deliver the reply. A dropped [`Pending`] (closed channel) is not an
    /// error; callbacks cannot fail.
    fn send(self, reply: Result<Reply, ServeError>) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send(reply);
            }
            ReplySink::Callback(f) => f(reply),
        }
    }
}

/// One queued inference request.
struct Request {
    data: Vec<f32>,
    shape: Vec<usize>,
    reply: ReplySink,
}

/// Queue state behind the server's mutex.
struct QueueState {
    queue: VecDeque<Request>,
    shutdown: bool,
}

/// Monotonic serving counters (all `Relaxed`; read via [`ServeStats`]).
#[derive(Default)]
struct Counters {
    batches: AtomicU64,
    items: AtomicU64,
    largest_batch: AtomicU64,
    failed_batches: AtomicU64,
    /// The adaptive flush deadline (nanoseconds) a worker most recently
    /// dispatched under; observability only.
    flush_deadline_ns: AtomicU64,
}

/// State shared between submitters and workers.
struct Shared {
    state: Mutex<QueueState>,
    /// Workers wait here for requests (and for batches to fill).
    not_empty: Condvar,
    /// Blocked submitters wait here for queue space.
    space: Condvar,
    counters: Counters,
}

/// A snapshot of the server's serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Batches dispatched to plan replicas.
    pub batches: u64,
    /// Samples served (successfully executed).
    pub items: u64,
    /// Largest batch dispatched so far.
    pub largest_batch: u64,
    /// Batches that failed execution (every member got
    /// [`ServeError::Execution`]).
    pub failed_batches: u64,
    /// The adaptive flush deadline (in nanoseconds) of the most recent
    /// dispatch — between [`ServeConfig::flush_deadline_min`] and
    /// [`ServeConfig::flush_deadline`]. Zero before the first dispatch.
    pub flush_deadline_ns: u64,
}

impl ServeStats {
    /// Mean samples per dispatched batch.
    ///
    /// Defined as **0.0 before the first dispatch** rather than the literal
    /// `0/0 = NaN`: these stats feed the `serve_latency` bench rows, and
    /// the `da_bench::json` schema (rightly) rejects non-finite metrics.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.items as f64 / self.batches as f64
        }
    }
}

/// An in-flight request handle returned by [`BatchServer::submit`].
#[must_use = "dropping a Pending discards the request's logits"]
pub struct Pending {
    rx: mpsc::Receiver<Result<Reply, ServeError>>,
}

impl Pending {
    /// Block until the request's batch executes and return the logits for
    /// this sample alone (shape `[classes...]`, no batch axis).
    pub fn wait(self) -> Result<Tensor, ServeError> {
        match self.rx.recv() {
            Ok(Ok((data, shape))) => Ok(Tensor::from_vec(data, &shape)),
            Ok(Err(e)) => Err(e),
            // The worker (or server) went away without replying.
            Err(mpsc::RecvError) => Err(ServeError::ShuttingDown),
        }
    }
}

/// A thread-based micro-batching front end over [`InferencePlan`] replicas
/// (see the module docs for the batching contract).
pub struct BatchServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    queue_capacity: usize,
    /// The source network's [`Network::plan_epoch`] at compile time.
    source_epoch: u64,
}

impl BatchServer {
    /// Compile one plan replica per worker from `network` and start serving.
    ///
    /// Returns `None` when the network has no compiled form (the same
    /// condition under which [`Network::plan`] returns `None`) — callers
    /// fall back to the per-layer path.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.queue_capacity` is zero.
    pub fn compile(network: &Network, config: ServeConfig) -> Option<BatchServer> {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be at least 1");
        // Read the epoch *before* compiling: a concurrent mutation mid-compile
        // then flags the server stale instead of going unnoticed.
        let source_epoch = network.plan_epoch();
        let replicas: Option<Vec<Arc<InferencePlan>>> = (0..config.workers.max(1))
            .map(|_| InferencePlan::compile(network, network.multiplier().cloned()).map(Arc::new))
            .collect();
        let mut replicas = replicas?;
        replicas.truncate(config.workers);
        Self::start(replicas, config, source_epoch)
    }

    /// [`compile`](BatchServer::compile) in **int8 mode**: the shard pool
    /// serves one [`InferencePlan::compile_quantized`] plan, calibrated on
    /// `calibration`, shared by every worker. Quantized plans carry
    /// multi-MiB product tables (and, for gate-level multipliers, a
    /// 65 536-product build cost), so workers share one snapshot instead of
    /// replicating it — plans are `&self` to execute and workspaces are
    /// pooled per call, so sharing adds no contention beyond the pool lock.
    ///
    /// The batching contract is unchanged: quantized plans are
    /// deterministic and run batch items independently, so served logits
    /// stay bit-identical to a serial
    /// [`InferencePlan::predict_batch`] on the same plan under any
    /// concurrent schedule (covered by `tests/quantized_plan.rs`).
    ///
    /// Returns `None` when the network cannot compile to a quantized plan
    /// (see [`InferencePlan::compile_quantized`]).
    ///
    /// # Panics
    ///
    /// Panics as [`compile`](BatchServer::compile) does, or if
    /// `calibration` is not a non-empty batch of the served shape.
    pub fn compile_quantized(
        network: &Network,
        calibration: &da_tensor::Tensor,
        config: ServeConfig,
    ) -> Option<BatchServer> {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be at least 1");
        let source_epoch = network.plan_epoch();
        let plan = Arc::new(InferencePlan::compile_quantized(
            network,
            network.multiplier().cloned(),
            calibration,
        )?);
        let replicas = vec![plan; config.workers];
        Self::start(replicas, config, source_epoch)
    }

    /// [`compile_quantized`](BatchServer::compile_quantized) in
    /// **int4-weight mode**: the shared snapshot is one
    /// [`InferencePlan::compile_quantized_int4`] plan — conv/dense layers
    /// serve the in-register shuffle GEMM over 256×16 tables where
    /// calibration allows, with per-layer int8 gather fallback (a
    /// mixed-precision snapshot; see [`InferencePlan::int4_layer_mix`]).
    /// The sharing rationale and the bit-identical batching contract are
    /// exactly [`compile_quantized`](BatchServer::compile_quantized)'s.
    ///
    /// Returns `None` when the network cannot compile to a quantized plan.
    ///
    /// # Panics
    ///
    /// Panics as [`compile_quantized`](BatchServer::compile_quantized) does.
    pub fn compile_quantized_int4(
        network: &Network,
        calibration: &da_tensor::Tensor,
        config: ServeConfig,
    ) -> Option<BatchServer> {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be at least 1");
        let source_epoch = network.plan_epoch();
        let plan = Arc::new(InferencePlan::compile_quantized_int4(
            network,
            network.multiplier().cloned(),
            calibration,
        )?);
        let replicas = vec![plan; config.workers];
        Self::start(replicas, config, source_epoch)
    }

    /// Serve an already-compiled (or snapshot-loaded) plan: every worker
    /// shards the same `Arc`, so a plan whose tables borrow an `mmap`ed
    /// snapshot is served by N workers over **one** mapping — no per-worker
    /// copy of the multi-MiB product tables or weight matrices.
    ///
    /// A plan served this way has no source [`Network`], so
    /// [`is_stale`](BatchServer::is_stale) reports `true` against *any*
    /// network (the sentinel epoch `u64::MAX` is never a real
    /// [`Network::plan_epoch`] value): staleness tracking is only
    /// meaningful for the `compile*` constructors.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.queue_capacity` is zero.
    pub fn from_plan(plan: Arc<InferencePlan>, config: ServeConfig) -> BatchServer {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be at least 1");
        let replicas = vec![plan; config.workers];
        Self::start(replicas, config, u64::MAX).expect("start never fails")
    }

    /// Map the plan snapshot at `path` (see [`crate::snapshot`]) and serve
    /// it via [`from_plan`](BatchServer::from_plan). This is the
    /// near-zero-cold-start path: no calibration, no LUT build, no weight
    /// copy — time-to-first-inference is dominated by the first batch
    /// itself.
    ///
    /// # Panics
    ///
    /// Panics as [`from_plan`](BatchServer::from_plan) does.
    pub fn from_snapshot(
        path: impl AsRef<std::path::Path>,
        config: ServeConfig,
    ) -> Result<BatchServer, crate::snapshot::SnapshotError> {
        let plan = Arc::new(InferencePlan::load(path)?);
        Ok(Self::from_plan(plan, config))
    }

    /// Shared startup: install the panic hook and spawn one worker per plan
    /// replica. `source_epoch` is the network's
    /// [`Network::plan_epoch`] read *before* compiling, so a concurrent
    /// mutation mid-compile flags the server stale instead of going
    /// unnoticed.
    fn start(
        mut replicas: Vec<Arc<InferencePlan>>,
        config: ServeConfig,
        source_epoch: u64,
    ) -> Option<BatchServer> {
        install_quiet_panic_hook();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { queue: VecDeque::new(), shutdown: false }),
            not_empty: Condvar::new(),
            space: Condvar::new(),
            counters: Counters::default(),
        });
        let workers = replicas
            .drain(..)
            .enumerate()
            .map(|(i, plan)| {
                let shared = shared.clone();
                let max_batch = config.max_batch;
                let flush = FlushPolicy {
                    max: config.flush_deadline,
                    min: config.flush_deadline_min.min(config.flush_deadline),
                };
                std::thread::Builder::new()
                    .name(format!("da-serve-{i}"))
                    .spawn(move || worker_loop(plan, shared, max_batch, flush))
                    .expect("spawn serve worker")
            })
            .collect();
        Some(BatchServer { shared, workers, queue_capacity: config.queue_capacity, source_epoch })
    }

    /// Queue one sample (`[C, H, W]` or `[features...]`, *no* batch axis),
    /// blocking while the queue is at capacity.
    ///
    /// Returns [`ServeError::ShuttingDown`] if the server stopped accepting
    /// requests while this call was blocked.
    pub fn submit(&self, item: &Tensor) -> Result<Pending, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(item, true, ReplySink::Channel(tx))?;
        Ok(Pending { rx })
    }

    /// Non-blocking [`submit`](BatchServer::submit): fails with
    /// [`ServeError::QueueFull`] instead of waiting for queue space.
    pub fn try_submit(&self, item: &Tensor) -> Result<Pending, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(item, false, ReplySink::Channel(tx))?;
        Ok(Pending { rx })
    }

    /// Non-blocking submit that delivers the reply to `on_reply` instead of
    /// a [`Pending`] channel — the submission form an event loop needs: the
    /// socket front end ([`crate::net`]) must never block its reactor
    /// thread, so completions are pushed to it (callback → completion queue
    /// → poller wakeup) rather than pulled with a blocking `recv`.
    ///
    /// `on_reply` runs exactly once, on the worker thread that executed the
    /// batch (or, on shutdown with queued requests, on the dropping
    /// thread) — keep it cheap and non-blocking. On `Err` (queue full /
    /// shutting down) the callback is dropped without being invoked; the
    /// caller still owns the request and decides whether to retry.
    pub fn try_submit_with(
        &self,
        item: &Tensor,
        on_reply: ReplyCallback,
    ) -> Result<(), ServeError> {
        self.enqueue(item, false, ReplySink::Callback(on_reply))
    }

    fn enqueue(&self, item: &Tensor, block: bool, reply: ReplySink) -> Result<(), ServeError> {
        {
            let mut st = self.shared.state.lock().expect("serve queue lock");
            loop {
                if st.shutdown {
                    return Err(ServeError::ShuttingDown);
                }
                if st.queue.len() < self.queue_capacity {
                    break;
                }
                if !block {
                    return Err(ServeError::QueueFull);
                }
                st = self.shared.space.wait(st).expect("serve queue lock");
            }
            // Copy the sample only once admission is certain, so rejected
            // `try_submit`s never pay for it; the copy is µs-scale, cheap
            // enough to do under the lock.
            st.queue.push_back(Request {
                data: item.data().to_vec(),
                shape: item.shape().to_vec(),
                reply,
            });
        }
        // Wake every waiting worker: one will dispatch, the rest re-check
        // (workers also wait here for partial batches to fill).
        self.shared.not_empty.notify_all();
        Ok(())
    }

    /// Logits for one sample: [`submit`](BatchServer::submit) + wait.
    pub fn logits(&self, item: &Tensor) -> Result<Tensor, ServeError> {
        self.submit(item)?.wait()
    }

    /// Predicted class for one sample (the shared
    /// [`crate::loss::argmax_logits`] tie behavior).
    pub fn predict(&self, item: &Tensor) -> Result<usize, ServeError> {
        Ok(argmax_logits(self.logits(item)?.data()))
    }

    /// Serve a whole `[N, ...]` batch *through the request queue*: every
    /// item becomes one submission (interleaving freely with concurrent
    /// callers), and the rows are reassembled in submission order.
    /// Bit-identical to [`InferencePlan::predict_batch`] on a replica.
    ///
    /// A full queue is not an error here: submissions use the blocking
    /// [`submit`](BatchServer::submit), so backpressure stalls this caller
    /// (documented queue semantics) while workers drain. What *is*
    /// propagated is every failure a network caller could induce on a live
    /// server — shutdown racing the submission loop, or an execution
    /// failure — as a [`ServeError`] instead of the panic this method used
    /// to raise (a shut-down server would take the whole caller down).
    ///
    /// # Panics
    ///
    /// Panics only on caller bugs: a non-batched input or a server built
    /// with zero workers (whose queue can never drain).
    pub fn predict_batch(&self, x: &Tensor) -> Result<Tensor, ServeError> {
        assert!(x.shape().len() >= 2, "predict_batch expects a batched [N, ...] input");
        assert!(!self.workers.is_empty(), "predict_batch needs at least one worker");
        let n = x.shape()[0];
        let mut pending: Vec<Pending> = Vec::with_capacity(n);
        for i in 0..n {
            pending.push(self.submit(&x.batch_item(i))?);
        }
        let mut rows: Vec<Tensor> = Vec::with_capacity(n);
        for p in pending {
            rows.push(p.wait()?);
        }
        Ok(Tensor::stack(&rows))
    }

    /// Whether `network` has been invalidated since this server compiled its
    /// replicas (weights, multiplier, or training-mode statistics changed).
    ///
    /// A stale server keeps serving its compile-time snapshot — exactly like
    /// a held [`Arc`]`<`[`InferencePlan`]`>` — so callers decide when to
    /// rebuild. Only meaningful for the network the server was compiled
    /// from.
    pub fn is_stale(&self, network: &Network) -> bool {
        network.plan_epoch() != self.source_epoch
    }

    /// Worker-thread count (plan replicas).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        ServeStats {
            batches: c.batches.load(Ordering::Relaxed),
            items: c.items.load(Ordering::Relaxed),
            largest_batch: c.largest_batch.load(Ordering::Relaxed),
            failed_batches: c.failed_batches.load(Ordering::Relaxed),
            flush_deadline_ns: c.flush_deadline_ns.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting requests without blocking: submitters (including ones
    /// currently blocked on backpressure) fail with
    /// [`ServeError::ShuttingDown`], and workers exit once the queue
    /// drains. Dropping the server still joins the workers.
    pub fn begin_shutdown(&self) {
        {
            let mut st = self.shared.state.lock().expect("serve queue lock");
            st.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.space.notify_all();
    }

    /// Stop accepting requests, drain the queue, and join the workers
    /// (equivalent to dropping the server, but explicit at call sites).
    pub fn shutdown(self) {}
}

impl Drop for BatchServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Workers drain the queue before exiting; with zero workers (or if a
        // worker thread died), fail whatever is left.
        let mut st = self.shared.state.lock().expect("serve queue lock");
        for request in st.queue.drain(..) {
            request.reply.send(Err(ServeError::ShuttingDown));
        }
    }
}

impl std::fmt::Debug for BatchServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchServer")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.queue_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

/// The adaptive flush-deadline policy a worker applies between batches
/// (see [`ServeConfig::flush_deadline`]).
#[derive(Debug, Clone, Copy)]
struct FlushPolicy {
    /// Ceiling (and the starting deadline): `ServeConfig::flush_deadline`.
    max: Duration,
    /// Floor under load, already clamped to `max` at server start.
    min: Duration,
}

impl FlushPolicy {
    /// The next deadline after dispatching a batch: a batch that `filled`
    /// to `max_batch` means the server is loaded and waiting buys nothing
    /// (halve, toward `min`); a partial flush means traffic is sparse and a
    /// longer window may coalesce stragglers (double, toward `max`).
    ///
    /// Saturating on purpose: `cur * 2` on a `Duration` near the type's
    /// ceiling would otherwise panic, and `cur / 2` of a sub-nanosecond
    /// deadline must floor at `min`, not wrap.
    fn adapt(&self, cur: Duration, filled: bool) -> Duration {
        if self.max.is_zero() {
            return Duration::ZERO;
        }
        if filled {
            (cur / 2).max(self.min)
        } else {
            // Doubling zero is zero: with a zero `min` the halving branch
            // can reach an exactly-zero deadline, and regrowth must restart
            // from a minimum quantum or the policy is pinned at the floor
            // forever after one loaded spell.
            cur.max(Duration::from_nanos(1)).saturating_mul(2).min(self.max)
        }
    }
}

/// One worker: wait for requests, form a batch (FIFO, same-shape prefix, up
/// to `max_batch`, holding up to the adaptive flush deadline for it to
/// fill), execute it on this worker's plan replica, and reply per request.
fn worker_loop(
    plan: Arc<InferencePlan>,
    shared: Arc<Shared>,
    max_batch: usize,
    flush: FlushPolicy,
) {
    let mut deadline = flush.max;
    loop {
        let (batch, filled): (Vec<Request>, bool) = {
            let mut st = shared.state.lock().expect("serve queue lock");
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = shared.not_empty.wait(st).expect("serve queue lock");
            }
            if !deadline.is_zero() && st.queue.len() < max_batch && !st.shutdown {
                // `checked_add` instead of `+`: Instant + Duration panics on
                // overflow, and the deadline is caller-controlled. An
                // unrepresentable deadline waits until the batch fills or
                // shutdown — semantically "infinite", which is what a
                // far-future Instant would have meant anyway.
                let until = Instant::now().checked_add(deadline);
                loop {
                    if st.queue.len() >= max_batch || st.shutdown {
                        break;
                    }
                    match until {
                        None => st = shared.not_empty.wait(st).expect("serve queue lock"),
                        Some(until) => {
                            // Re-read the clock on every re-arm (spurious
                            // wakeups and early notifies land here): once
                            // `now` has caught up to `until`, flush — a
                            // saturated zero timeout would otherwise spin.
                            let now = Instant::now();
                            if now >= until {
                                break;
                            }
                            let (guard, _timeout) = shared
                                .not_empty
                                .wait_timeout(st, until.saturating_duration_since(now))
                                .expect("serve queue lock");
                            st = guard;
                        }
                    }
                }
            }
            // Another worker may have drained the queue while this one slept.
            if st.queue.is_empty() {
                continue;
            }
            let shape = st.queue.front().expect("non-empty queue").shape.clone();
            let take = st
                .queue
                .iter()
                .take(max_batch)
                .take_while(|request| request.shape == shape)
                .count();
            let drained: Vec<Request> = st.queue.drain(..take).collect();
            drop(st);
            shared.space.notify_all();
            let filled = drained.len() >= max_batch;
            (drained, filled)
        };
        shared.counters.flush_deadline_ns.store(deadline.as_nanos() as u64, Ordering::Relaxed);
        deadline = flush.adapt(deadline, filled);
        run_batch(&plan, batch, &shared.counters);
    }
}

std::thread_local! {
    /// Set while a worker executes a plan, so the panic hook stays silent
    /// for the *anticipated* failure path (shape rejections become
    /// [`ServeError::Execution`], not log spam). Thread-local: panics on
    /// every other thread still print normally.
    static IN_PLAN_EXECUTION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once per process) a panic hook that defers to the previous hook
/// except while this thread is inside [`run_batch`]'s `catch_unwind`.
fn install_quiet_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_PLAN_EXECUTION.with(|flag| flag.get()) {
                previous(info);
            }
        }));
    });
}

/// Stack a same-shape batch, run it, and scatter the logits rows back to the
/// per-request channels. A panic in the plan (shape mismatch) fails every
/// member of this batch but leaves the worker serving.
fn run_batch(plan: &InferencePlan, batch: Vec<Request>, counters: &Counters) {
    let n = batch.len();
    let item_len = batch[0].data.len();
    let mut data = Vec::with_capacity(n * item_len);
    for request in &batch {
        data.extend_from_slice(&request.data);
    }
    let mut shape = vec![n];
    shape.extend_from_slice(&batch[0].shape);
    let input = Tensor::from_vec(data, &shape);

    IN_PLAN_EXECUTION.with(|flag| flag.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| plan.predict_batch(&input)));
    IN_PLAN_EXECUTION.with(|flag| flag.set(false));
    match result {
        Ok(logits) => {
            // Count before replying: a caller that has already received its
            // logits must see them reflected in `stats()`.
            counters.batches.fetch_add(1, Ordering::Relaxed);
            counters.items.fetch_add(n as u64, Ordering::Relaxed);
            counters.largest_batch.fetch_max(n as u64, Ordering::Relaxed);
            let out_shape: Vec<usize> = logits.shape()[1..].to_vec();
            let out_len: usize = out_shape.iter().product();
            for (i, request) in batch.into_iter().enumerate() {
                let row = logits.data()[i * out_len..(i + 1) * out_len].to_vec();
                // A dropped Pending is not an error; sinks absorb that.
                request.reply.send(Ok((row, out_shape.clone())));
            }
        }
        Err(payload) => {
            counters.failed_batches.fetch_add(1, Ordering::Relaxed);
            let msg = panic_message(payload);
            for request in batch {
                request.reply.send(Err(ServeError::Execution(msg.clone())));
            }
        }
    }
}

/// Best-effort text of a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use da_arith::MultiplierKind;
    use rand::SeedableRng;

    fn tiny_cnn(seed: u64) -> Network {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Network::new("serve-tiny")
            .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
            .push(Relu)
            .push(MaxPool2d::new(2, 2))
            .push(Flatten)
            .push(Dense::new(3 * 4 * 4, 5, &mut rng))
    }

    fn cfg(workers: usize, max_batch: usize, cap: usize) -> ServeConfig {
        ServeConfig {
            workers,
            max_batch,
            flush_deadline: Duration::ZERO,
            queue_capacity: cap,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn single_submission_matches_plan() {
        let mut net = tiny_cnn(3);
        net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
        let plan = net.plan().expect("compilable");
        let server = BatchServer::compile(&net, cfg(2, 4, 8)).expect("compilable");
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let x = Tensor::randn(&[1, 8, 8], 1.0, &mut rng);
        let got = server.logits(&x).expect("served");
        let want = plan.predict_batch(&Tensor::stack(std::slice::from_ref(&x)));
        assert_eq!(got.data(), want.data());
        assert_eq!(got.shape(), &[5]);
        assert_eq!(server.predict(&x).unwrap(), plan.predict(&Tensor::stack(&[x]))[0]);
    }

    #[test]
    fn predict_batch_round_trips_through_the_queue() {
        let net = tiny_cnn(5);
        let plan = net.plan().expect("compilable");
        let server = BatchServer::compile(&net, cfg(2, 3, 4)).expect("compilable");
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let x = Tensor::randn(&[7, 1, 8, 8], 1.0, &mut rng);
        let got = server.predict_batch(&x).expect("served");
        let want = plan.predict_batch(&x);
        assert_eq!(got, want);
        let stats = server.stats();
        assert_eq!(stats.items, 7);
        assert!(stats.batches >= 1 && stats.batches <= 7, "{stats:?}");
        assert!(stats.mean_batch() >= 1.0);
    }

    /// Regression (issue 8): `mean_batch` on a server that has dispatched
    /// nothing must be 0.0, not the literal `0/0 = NaN` — the serve_latency
    /// JSON rows are built from it and the schema rejects non-finite
    /// metrics.
    #[test]
    fn mean_batch_is_zero_not_nan_before_first_dispatch() {
        let fresh = ServeStats {
            batches: 0,
            items: 0,
            largest_batch: 0,
            failed_batches: 0,
            flush_deadline_ns: 0,
        };
        assert_eq!(fresh.mean_batch(), 0.0);
        assert!(fresh.mean_batch().is_finite());

        let net = tiny_cnn(11);
        let server = BatchServer::compile(&net, cfg(0, 1, 4)).expect("compilable");
        assert_eq!(server.stats().mean_batch(), 0.0);
        assert!(server.stats().mean_batch().is_finite());
    }

    /// Regression (issue 8): a shut-down server must fail `predict_batch`
    /// with a typed error, not panic the caller.
    #[test]
    fn predict_batch_propagates_shutdown_instead_of_panicking() {
        let net = tiny_cnn(13);
        let server = BatchServer::compile(&net, cfg(1, 2, 4)).expect("compilable");
        server.begin_shutdown();
        let x = Tensor::zeros(&[3, 1, 8, 8]);
        assert_eq!(server.predict_batch(&x).err(), Some(ServeError::ShuttingDown));
    }

    /// Regression (issue 8): the queue-full path is typed, never a panic —
    /// non-blocking submission surfaces `QueueFull`, and the blocking
    /// `predict_batch` documents-and-blocks until workers drain (checked
    /// here with a capacity smaller than the batch).
    #[test]
    fn queue_full_is_typed_and_predict_batch_blocks_through_it() {
        let net = tiny_cnn(17);
        let x1 = Tensor::zeros(&[1, 8, 8]);
        // Zero workers: the queue can only fill.
        let stuck = BatchServer::compile(&net, cfg(0, 1, 1)).expect("compilable");
        let _held = stuck.try_submit(&x1).expect("first fits");
        assert_eq!(stuck.try_submit(&x1).err(), Some(ServeError::QueueFull));
        assert_eq!(stuck.try_submit_with(&x1, Box::new(|_| {})).err(), Some(ServeError::QueueFull));
        // One worker, capacity 2 < batch 6: submissions backpressure and
        // complete (bounded: workers drain while the submitter blocks).
        let plan = net.plan().expect("compilable");
        let server = BatchServer::compile(&net, cfg(1, 2, 2)).expect("compilable");
        let mut rng = rand::rngs::StdRng::seed_from_u64(18);
        let x = Tensor::randn(&[6, 1, 8, 8], 1.0, &mut rng);
        let got = server.predict_batch(&x).expect("drains through backpressure");
        assert_eq!(got, plan.predict_batch(&x));
    }

    #[test]
    fn callback_submission_delivers_on_worker_thread() {
        let mut net = tiny_cnn(19);
        net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
        let plan = net.plan().expect("compilable");
        let server = BatchServer::compile(&net, cfg(1, 4, 8)).expect("compilable");
        let mut rng = rand::rngs::StdRng::seed_from_u64(20);
        let x = Tensor::randn(&[1, 8, 8], 1.0, &mut rng);
        let (tx, rx) = mpsc::channel();
        server
            .try_submit_with(
                &x,
                Box::new(move |reply| {
                    let _ = tx.send(reply);
                }),
            )
            .expect("queued");
        let (data, shape) = rx.recv().expect("callback ran").expect("served");
        let want = plan.predict_batch(&Tensor::stack(std::slice::from_ref(&x)));
        assert_eq!(data.as_slice(), want.data());
        assert_eq!(shape, vec![5]);
    }

    #[test]
    fn adaptive_deadline_shrinks_under_load_and_grows_when_idle() {
        let policy =
            FlushPolicy { max: Duration::from_micros(200), min: Duration::from_micros(25) };
        // Sustained load walks the deadline down to the floor...
        let mut cur = policy.max;
        for _ in 0..8 {
            cur = policy.adapt(cur, true);
        }
        assert_eq!(cur, policy.min);
        // ...and idle partial flushes walk it back to the ceiling.
        for _ in 0..8 {
            cur = policy.adapt(cur, false);
        }
        assert_eq!(cur, policy.max);
        // Saturation: doubling from near the Duration ceiling must not
        // panic, and a zero ceiling pins everything to zero.
        let huge = FlushPolicy { max: Duration::MAX, min: Duration::ZERO };
        assert_eq!(huge.adapt(Duration::MAX, false), Duration::MAX);
        let zero = FlushPolicy { max: Duration::ZERO, min: Duration::ZERO };
        assert_eq!(zero.adapt(Duration::from_secs(1), true), Duration::ZERO);
    }

    #[test]
    fn adaptive_deadline_recovers_from_a_zero_floor() {
        // A zero floor is legal configuration; sustained load halves the
        // deadline down to exactly zero...
        let policy = FlushPolicy { max: Duration::from_micros(200), min: Duration::ZERO };
        let mut cur = policy.max;
        for _ in 0..64 {
            cur = policy.adapt(cur, true);
        }
        assert_eq!(cur, Duration::ZERO, "halving with a zero floor must reach zero");
        // ...and sparse traffic must still regrow it: doubling zero forever
        // would pin the policy at an immediate-dispatch deadline for the
        // rest of the server's life.
        for _ in 0..64 {
            cur = policy.adapt(cur, false);
        }
        assert_eq!(cur, policy.max, "deadline must regrow after load pinned it at zero");
    }

    #[test]
    fn stats_expose_the_dispatch_deadline() {
        let net = tiny_cnn(23);
        let config = ServeConfig {
            workers: 1,
            max_batch: 2,
            flush_deadline: Duration::from_nanos(1),
            flush_deadline_min: Duration::from_nanos(1),
            queue_capacity: 8,
        };
        let server = BatchServer::compile(&net, config).expect("compilable");
        let x = Tensor::zeros(&[1, 8, 8]);
        server.logits(&x).expect("served");
        assert_eq!(server.stats().flush_deadline_ns, 1);
    }

    #[test]
    fn zero_worker_server_applies_backpressure_and_fails_on_shutdown() {
        let net = tiny_cnn(7);
        let server = BatchServer::compile(&net, cfg(0, 1, 2)).expect("compilable");
        let x = Tensor::zeros(&[1, 8, 8]);
        let a = server.try_submit(&x).expect("first fits");
        let b = server.try_submit(&x).expect("second fits");
        assert_eq!(server.try_submit(&x).err(), Some(ServeError::QueueFull));
        server.shutdown();
        assert_eq!(a.wait().err(), Some(ServeError::ShuttingDown));
        assert_eq!(b.wait().err(), Some(ServeError::ShuttingDown));
    }

    #[test]
    fn uncompilable_network_declines() {
        struct Opaque;
        impl crate::Layer for Opaque {
            fn name(&self) -> &'static str {
                "opaque"
            }
            fn forward(&self, x: &Tensor, _mode: crate::Mode) -> (Tensor, crate::Cache) {
                (x.clone(), crate::Cache::none())
            }
            fn backward(&self, _cache: &crate::Cache, grad: &Tensor) -> (Tensor, Vec<Tensor>) {
                (grad.clone(), Vec::new())
            }
        }
        let net = Network::new("opaque").push(Opaque);
        assert!(BatchServer::compile(&net, cfg(1, 1, 1)).is_none());
        assert!(BatchServer::compile(&net, cfg(0, 1, 1)).is_none());
    }

    #[test]
    fn config_default_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.max_batch >= 1);
        assert!(cfg.queue_capacity >= cfg.workers);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ServeError::QueueFull.to_string().contains("full"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting down"));
        assert!(ServeError::Execution("boom".into()).to_string().contains("boom"));
    }
}
