//! Cross-request micro-batching: the serving front end over compiled
//! [`InferencePlan`]s.
//!
//! The engine ([`crate::engine`]) made one process fast; this module makes
//! that process *serve*: many concurrent callers submit single samples, a
//! [`BatchServer`] coalesces them into batches and executes them on a shard
//! pool of [`InferencePlan`] replicas — one plan per worker thread, so each
//! worker reuses its own pooled workspace arenas without contending (at the
//! cost of one prepared-weight snapshot per worker).
//!
//! # The batching contract
//!
//! * **Bit-identity.** Defensive Approximation's perturbation is *the
//!   arithmetic itself* (paper §4), so a sample's logits must not depend on
//!   which requests it happened to share a batch with. [`InferencePlan`]
//!   runs batch items independently (per-item reduction order, operand
//!   order, and special-value branches are all pinned to the per-layer
//!   reference), so logits returned by [`BatchServer::submit`] are
//!   bit-identical to a serial [`InferencePlan::predict_batch`] on the same
//!   sample — for every [`da_arith::MultiplierKind`], under any concurrent
//!   schedule. `crates/nn/tests/serve_conformance.rs` property-tests this
//!   under adversarial scheduling (tiny `max_batch`, zero deadline,
//!   queue-full backpressure).
//! * **Ordering.** The queue is FIFO: workers always dispatch the oldest
//!   pending request first, extending the batch with the longest prefix of
//!   same-shape requests (up to [`ServeConfig::max_batch`]). Responses
//!   travel on per-request channels, so callers never observe each other.
//! * **Batch formation.** A worker that finds fewer than `max_batch`
//!   requests queued waits up to [`ServeConfig::flush_deadline`] (a
//!   [`Condvar`] timeout) for more to arrive, then flushes whatever is
//!   there. A zero deadline dispatches immediately — batches still form
//!   opportunistically whenever submitters outpace workers.
//! * **Backpressure.** The queue holds at most
//!   [`ServeConfig::queue_capacity`] requests. [`BatchServer::submit`]
//!   blocks until space frees up; [`BatchServer::try_submit`] returns
//!   [`ServeError::QueueFull`] instead.
//! * **Failure containment.** A request that cannot execute (e.g. a shape
//!   the plan rejects) fails *its batch* with [`ServeError::Execution`];
//!   the worker survives and keeps serving subsequent requests.
//! * **Self-healing.** A panic that escapes the per-batch guard does not
//!   take the server down: the dying worker's in-flight requests fail with
//!   [`ServeError::WorkerDied`] (typed, never a hang), the supervisor
//!   respawns the worker ([`ServeStats::worker_restarts`] counts it), and
//!   every queue-lock site recovers from mutex poisoning instead of
//!   cascading panics into submitters.
//! * **Deadlines.** Requests may carry a deadline
//!   ([`BatchServer::submit_deadline`], or
//!   [`ServeConfig::default_deadline`] for all of them). Expired work is
//!   shed with [`ServeError::DeadlineExceeded`] — at admission, at
//!   dispatch, or by a background expiry sweep that covers requests no
//!   worker ever reaches — so a queued request can never strand its caller.
//! * **Overload control.** The server tracks an EWMA of per-item service
//!   time ([`ServeStats::ewma_service_ns`]) and *estimates* the queued
//!   wait at admission: a deadline-carrying request whose deadline the
//!   estimate already blows is shed immediately with
//!   [`ServeError::Overloaded`] (carrying a retry-after hint) instead of
//!   rotting in the queue — under sustained overload the queue sheds
//!   doomed work early and spends its capacity on requests that can still
//!   make their deadlines. When a non-blocking submit finds the queue
//!   full, the oldest queued request that is *already doomed* and
//!   deadline-sorts before the newcomer is shed in its favor
//!   (shed-oldest). [`ServeStats::shed_total`] counts both forms.
//! * **Graceful degradation (brownout).** Operators may install a cheaper
//!   *fallback* plan ([`BatchServer::set_fallback_plan`], e.g. an int8
//!   snapshot beside the f32 primary). Under sustained shed pressure
//!   ([`ServeConfig::brownout_enter_sheds`] sheds inside
//!   [`ServeConfig::brownout_window`]) dispatch fails over to the
//!   fallback; replies carry [`Reply::degraded`] so callers know, and
//!   [`ServeStats::degraded_total`] counts them. Recovery is hysteretic:
//!   the server returns to the primary only after
//!   [`ServeConfig::brownout_exit_quiet`] with no sheds.
//! * **Hot reload.** [`BatchServer::reload_plan`] /
//!   [`BatchServer::reload_from_snapshot`] atomically swap the shard pool
//!   under live traffic: a replacement snapshot is fully validated before
//!   the swap (a corrupt file is rejected and the old plans keep serving),
//!   and [`ServeStats::generation`] records each successful swap. The
//!   swap also performs a **shape handshake**: a replacement whose
//!   serving interface ([`InferencePlan::interface`] — input/output
//!   shapes or precision family) differs from the current plan's is
//!   rejected with [`SnapshotError::Incompatible`], because swapping it
//!   in would silently change what connected clients get back.
//!
//!   [`SnapshotError::Incompatible`]: crate::snapshot::SnapshotError::Incompatible
//! * **Snapshot semantics.** Replicas snapshot the network at
//!   [`BatchServer::compile`] time, exactly like [`Network::plan`].
//!   Mutating the network afterwards (`set_multiplier`, `params_mut`, a
//!   training forward) invalidates the network's own cached plan but *not*
//!   the server's replicas: the server keeps serving the snapshot, and
//!   [`BatchServer::is_stale`] reports the divergence (via
//!   [`Network::plan_epoch`]) so operators can rebuild.
//!
//! Servers can also shard **int8 plans**
//! ([`BatchServer::compile_quantized`]): the queue, batching, backpressure,
//! and failure-containment machinery is plan-agnostic, and quantized plans
//! are deterministic with independent batch items, so the bit-identity
//! contract holds against a serial run of the same quantized plan.
//!
//! # Quickstart
//!
//! ```
//! use da_arith::MultiplierKind;
//! use da_nn::serve::{BatchServer, ServeConfig};
//! use da_nn::zoo::lenet5;
//! use da_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = lenet5(10, &mut rng);
//! net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
//! let server = BatchServer::compile(&net, ServeConfig::default())
//!     .expect("zoo models compile");
//! // Submit from any number of threads; each caller gets its own logits.
//! let pending = server.submit(&Tensor::zeros(&[1, 28, 28])).unwrap();
//! let logits = pending.wait().unwrap();
//! assert_eq!(logits.shape(), &[10]);
//! assert!(!server.is_stale(&net));
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use da_tensor::Tensor;

use crate::engine::InferencePlan;
use crate::loss::argmax_logits;
use crate::Network;

/// Micro-batching knobs for a [`BatchServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning one [`InferencePlan`] replica.
    ///
    /// `0` builds an accept-only server (requests queue but never execute)
    /// — useful for deterministic backpressure/shutdown tests; production
    /// servers want at least 1.
    pub workers: usize,
    /// Most samples a worker dispatches as one batch (≥ 1).
    pub max_batch: usize,
    /// The *longest* a worker holding fewer than `max_batch` requests waits
    /// for the batch to fill before flushing. Zero dispatches immediately
    /// (and disables adaptation).
    ///
    /// The effective deadline is **adaptive** per worker: each batch that
    /// fills to `max_batch` before the deadline (the server is loaded and
    /// batches form on their own) halves the worker's current deadline down
    /// to [`flush_deadline_min`](ServeConfig::flush_deadline_min), bounding
    /// the wait tax on tail latency; each deadline-expired partial flush
    /// (traffic is sparse) doubles it back up to `flush_deadline`, giving
    /// stragglers a chance to coalesce. Set
    /// `flush_deadline_min == flush_deadline` for a fixed deadline.
    pub flush_deadline: Duration,
    /// Floor for the adaptive flush deadline under load (see
    /// [`flush_deadline`](ServeConfig::flush_deadline)). Values above
    /// `flush_deadline` are clamped to it.
    pub flush_deadline_min: Duration,
    /// Most requests queued at once (≥ 1); beyond it, [`BatchServer::submit`]
    /// blocks and [`BatchServer::try_submit`] fails.
    pub queue_capacity: usize,
    /// Deadline applied to requests submitted without one of their own
    /// (measured from admission). `None` (the default) keeps the historical
    /// wait-forever behavior. Expired requests are shed with
    /// [`ServeError::DeadlineExceeded`] — before execution by the
    /// dispatching worker, and from the queue itself by a background expiry
    /// sweep, so a stranded request can never hang its caller.
    pub default_deadline: Option<Duration>,
    /// Sheds inside one [`brownout_window`](ServeConfig::brownout_window)
    /// that trip the brownout: once reached (and a fallback plan is
    /// installed — see [`BatchServer::set_fallback_plan`]), dispatch fails
    /// over to the fallback until pressure clears. Ignored without a
    /// fallback plan.
    pub brownout_enter_sheds: u32,
    /// Width of the sliding shed-pressure window (see
    /// [`brownout_enter_sheds`](ServeConfig::brownout_enter_sheds)).
    pub brownout_window: Duration,
    /// Hysteresis on recovery: the server leaves brownout only after this
    /// long with **no** sheds, so pressure oscillating around the
    /// threshold cannot flap dispatch between plans.
    pub brownout_exit_quiet: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ServeConfig {
            workers,
            max_batch: 8,
            flush_deadline: Duration::from_micros(200),
            flush_deadline_min: Duration::from_micros(25),
            queue_capacity: workers.max(1) * 16,
            default_deadline: None,
            brownout_enter_sheds: 16,
            brownout_window: Duration::from_millis(500),
            brownout_exit_quiet: Duration::from_secs(2),
        }
    }
}

/// Why a request could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The server is shutting down (or already has); the request was not
    /// executed.
    ShuttingDown,
    /// [`BatchServer::try_submit`] found the queue at capacity.
    QueueFull,
    /// The plan rejected the batch (panic message from the execution path,
    /// e.g. a shape mismatch). Other requests are unaffected.
    Execution(String),
    /// The request's deadline passed before it could execute; it was shed
    /// without running (see [`ServeConfig::default_deadline`]).
    DeadlineExceeded,
    /// The worker thread holding this request died (a panic escaped the
    /// batch execution guard). The request was *not* completed; the
    /// supervisor restarts the worker and later requests are unaffected
    /// (see [`ServeStats::worker_restarts`]).
    WorkerDied,
    /// Deadline-aware load shedding: the estimated queued wait (per-item
    /// service EWMA × backlog) already blows the request's deadline, so it
    /// was shed at admission instead of rotting in the queue — or it was
    /// the doomed oldest queued request traded away for a newer arrival.
    /// `retry_after` is the server's backlog-clearance estimate: a
    /// well-behaved client waits that long before retrying.
    Overloaded { retry_after: Duration },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShuttingDown => write!(f, "batch server is shutting down"),
            ServeError::QueueFull => write!(f, "batch server queue is full"),
            ServeError::Execution(msg) => write!(f, "batch execution failed: {msg}"),
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline exceeded before execution")
            }
            ServeError::WorkerDied => {
                write!(f, "serving worker died with the request in flight")
            }
            ServeError::Overloaded { retry_after } => {
                write!(
                    f,
                    "server overloaded: estimated queue wait blows the deadline \
                     (retry after {retry_after:?})"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A served request's logits: flattened data plus the per-item shape, and
/// whether the brownout fallback plan (rather than the primary) computed
/// them.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Flattened logits for this sample alone (no batch axis).
    pub data: Vec<f32>,
    /// Per-item logits shape.
    pub shape: Vec<usize>,
    /// `true` when the reply came from the degraded (brownout) fallback
    /// plan — see [`BatchServer::set_fallback_plan`].
    pub degraded: bool,
}

/// Callback form of a reply destination (see
/// [`BatchServer::try_submit_with`]): invoked exactly once, on the worker
/// thread that executed (or failed) the request's batch.
pub type ReplyCallback = Box<dyn FnOnce(Result<Reply, ServeError>) + Send + 'static>;

/// The two reply destinations a [`ReplySink`] can hold.
enum SinkKind {
    Channel(mpsc::Sender<Result<Reply, ServeError>>),
    Callback(ReplyCallback),
}

/// Where a request's reply goes: the per-request channel behind
/// [`Pending`], or a caller-supplied callback (the socket front end routes
/// completions back into its reactor this way — a blocking `recv` has no
/// place on an event loop).
///
/// A sink is a **drop guard**: if it is dropped without [`send`] or
/// [`disarm`](ReplySink::disarm) — the only way that happens is a panic
/// unwinding a worker with the request in flight — it delivers
/// [`ServeError::WorkerDied`] so the caller is unblocked with a typed error
/// instead of hanging on a channel (or reactor completion) that will never
/// arrive.
///
/// [`send`]: ReplySink::send
struct ReplySink {
    inner: Option<SinkKind>,
}

impl ReplySink {
    fn channel(tx: mpsc::Sender<Result<Reply, ServeError>>) -> Self {
        ReplySink { inner: Some(SinkKind::Channel(tx)) }
    }

    fn callback(f: ReplyCallback) -> Self {
        ReplySink { inner: Some(SinkKind::Callback(f)) }
    }

    /// Deliver the reply. A dropped [`Pending`] (closed channel) is not an
    /// error; callbacks cannot fail.
    fn send(mut self, reply: Result<Reply, ServeError>) {
        Self::deliver(self.inner.take(), reply);
    }

    /// Defuse the drop guard *without* delivering anything: rejected
    /// submissions return the error to the submitter directly, and the
    /// documented [`BatchServer::try_submit_with`] contract is that on
    /// `Err` the callback is never invoked.
    fn disarm(mut self) {
        self.inner = None;
    }

    fn deliver(kind: Option<SinkKind>, reply: Result<Reply, ServeError>) {
        match kind {
            None => {}
            Some(SinkKind::Channel(tx)) => {
                let _ = tx.send(reply);
            }
            Some(SinkKind::Callback(f)) => f(reply),
        }
    }
}

impl Drop for ReplySink {
    fn drop(&mut self) {
        if let Some(kind) = self.inner.take() {
            // This drop can run while a worker panic unwinds; a callback
            // that itself panics here would abort the process (double
            // panic), so contain it.
            let _ = catch_unwind(AssertUnwindSafe(move || {
                Self::deliver(Some(kind), Err(ServeError::WorkerDied));
            }));
        }
    }
}

/// One queued inference request.
struct Request {
    data: Vec<f32>,
    shape: Vec<usize>,
    reply: ReplySink,
    /// Absolute expiry; `None` waits forever (the pre-deadline behavior).
    deadline: Option<Instant>,
}

/// Queue state behind the server's mutex.
struct QueueState {
    queue: VecDeque<Request>,
    shutdown: bool,
}

/// Monotonic serving counters (all `Relaxed`; read via [`ServeStats`]).
#[derive(Default)]
struct Counters {
    batches: AtomicU64,
    items: AtomicU64,
    largest_batch: AtomicU64,
    failed_batches: AtomicU64,
    /// The adaptive flush deadline (nanoseconds) a worker most recently
    /// dispatched under; observability only.
    flush_deadline_ns: AtomicU64,
    /// Workers respawned by the supervisor after an escaped panic.
    worker_restarts: AtomicU64,
    /// Requests shed with [`ServeError::DeadlineExceeded`] before execution.
    deadline_expired: AtomicU64,
    /// Plan-pool generation: 0 at start, +1 per successful
    /// [`BatchServer::reload_plan`].
    generation: AtomicU64,
    /// Requests shed with [`ServeError::Overloaded`] (estimate-shed at
    /// admission plus shed-oldest victims).
    shed_total: AtomicU64,
    /// Items answered by the brownout fallback plan.
    degraded_total: AtomicU64,
    /// EWMA of per-item service time in nanoseconds (α = 1/8); 0 until the
    /// first batch completes. Benign racy read-modify-write: workers are
    /// few and the value is an estimate, not an invariant.
    ewma_service_ns: AtomicU64,
}

/// State shared between submitters and workers.
struct Shared {
    state: Mutex<QueueState>,
    /// Workers wait here for requests (and for batches to fill).
    not_empty: Condvar,
    /// Blocked submitters wait here for queue space.
    space: Condvar,
    counters: Counters,
    /// The shard pool of plan replicas. Workers fetch their replica per
    /// batch (`pool[i % len]`), so a hot reload
    /// ([`BatchServer::reload_plan`]) atomically swaps what the *next*
    /// batch executes on — in-flight batches finish on the plan they
    /// started with (the `Arc` keeps it alive).
    plans: RwLock<Vec<Arc<InferencePlan>>>,
    /// The cheaper plan brownout dispatch fails over to (`None` until
    /// [`BatchServer::set_fallback_plan`] installs one).
    fallback: RwLock<Option<Arc<InferencePlan>>>,
    /// Whether dispatch is currently degraded to the fallback plan. Set by
    /// shed pressure ([`note_shed`]), cleared hysteretically by workers
    /// once the quiet period passes ([`brownout_active`]).
    degraded: std::sync::atomic::AtomicBool,
    /// Sliding-window shed pressure behind the brownout decision.
    brownout: Mutex<BrownoutState>,
    /// Brownout thresholds, copied from [`ServeConfig`] at start.
    brownout_cfg: BrownoutConfig,
}

/// Brownout thresholds (see the [`ServeConfig`] fields of the same names).
#[derive(Debug, Clone, Copy)]
struct BrownoutConfig {
    enter_sheds: u32,
    window: Duration,
    exit_quiet: Duration,
}

/// Shed-pressure accounting behind the brownout decision.
struct BrownoutState {
    /// Start of the current pressure window.
    window_start: Instant,
    /// Sheds observed inside the current window.
    sheds: u32,
    /// The most recent shed — recovery requires `exit_quiet` past this.
    last_shed: Instant,
}

/// Record one shed for brownout accounting and trip the brownout when the
/// window threshold is reached (only if a fallback plan is installed —
/// degrading to nothing would serve nothing).
fn note_shed(shared: &Shared) {
    let now = Instant::now();
    let mut b = shared.brownout.lock().unwrap_or_else(PoisonError::into_inner);
    if now.duration_since(b.window_start) > shared.brownout_cfg.window {
        b.window_start = now;
        b.sheds = 0;
    }
    b.sheds = b.sheds.saturating_add(1);
    b.last_shed = now;
    if b.sheds >= shared.brownout_cfg.enter_sheds
        && shared.fallback.read().unwrap_or_else(PoisonError::into_inner).is_some()
    {
        shared.degraded.store(true, Ordering::Relaxed);
    }
}

/// Whether dispatch is currently in brownout, applying hysteretic
/// recovery: once [`ServeConfig::brownout_exit_quiet`] passes with no
/// sheds, clear the flag and return to the primary plan. Cheap on the
/// healthy path (one relaxed load).
fn brownout_active(shared: &Shared) -> bool {
    if !shared.degraded.load(Ordering::Relaxed) {
        return false;
    }
    let quiet = {
        let b = shared.brownout.lock().unwrap_or_else(PoisonError::into_inner);
        b.last_shed.elapsed() >= shared.brownout_cfg.exit_quiet
    };
    if quiet {
        shared.degraded.store(false, Ordering::Relaxed);
        return false;
    }
    true
}

/// Estimated time until a request at queue position `ahead` starts
/// executing, from the per-item service EWMA and the worker count.
fn estimated_wait(ahead: usize, ewma_ns: u64, workers: usize) -> Duration {
    let slots = (ahead as u64 + 1).div_ceil(workers.max(1) as u64);
    Duration::from_nanos(slots.saturating_mul(ewma_ns))
}

/// On a full queue, pick the shed-oldest victim for a new arrival: the
/// earliest-deadline queued request, provided it deadline-sorts *before*
/// the newcomer and the wait estimate already dooms it. Returns its queue
/// position and the estimated wait (the victim's retry hint), or `None`
/// when nothing should be traded (then the newcomer gets `QueueFull`).
fn shed_oldest_candidate(
    queue: &VecDeque<Request>,
    new_deadline: Option<Instant>,
    ewma_ns: u64,
    workers: usize,
) -> Option<(usize, Duration)> {
    if ewma_ns == 0 {
        return None; // no estimate yet — never shed on a cold server
    }
    let (pos, earliest) = queue
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.deadline.map(|d| (i, d)))
        .min_by_key(|&(_, d)| d)?;
    // A newcomer with an earlier (or equal) deadline than everything
    // queued does not sort after the queue — no trade.
    if new_deadline.is_some_and(|nd| nd <= earliest) {
        return None;
    }
    let wait = estimated_wait(pos, ewma_ns, workers);
    if Instant::now().checked_add(wait).is_none_or(|eta| eta > earliest) {
        Some((pos, wait))
    } else {
        None
    }
}

/// Lock the queue mutex, recovering from poison. A worker panic while
/// holding this lock leaves the queue structurally intact (requests are
/// only pushed and drained whole), and crash recovery is the supervisor's
/// job — so poisoning must not turn every later `submit`/`shutdown` into a
/// panic cascade.
fn lock_queue(shared: &Shared) -> MutexGuard<'_, QueueState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A snapshot of the server's serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Batches dispatched to plan replicas.
    pub batches: u64,
    /// Samples served (successfully executed).
    pub items: u64,
    /// Largest batch dispatched so far.
    pub largest_batch: u64,
    /// Batches that failed execution (every member got
    /// [`ServeError::Execution`]).
    pub failed_batches: u64,
    /// The adaptive flush deadline (in nanoseconds) of the most recent
    /// dispatch — between [`ServeConfig::flush_deadline_min`] and
    /// [`ServeConfig::flush_deadline`]. Zero before the first dispatch.
    pub flush_deadline_ns: u64,
    /// Workers respawned by the supervisor after an escaped panic (a panic
    /// outside the per-batch execution guard). Zero on a healthy server.
    pub worker_restarts: u64,
    /// Requests shed with [`ServeError::DeadlineExceeded`] before
    /// execution — by admission, by the dispatching worker, or by the
    /// background expiry sweep.
    pub deadline_expired: u64,
    /// Plan-pool generation: 0 for the plans the server started with,
    /// bumped by each successful [`BatchServer::reload_plan`] /
    /// [`BatchServer::reload_from_snapshot`].
    pub generation: u64,
    /// Requests shed with [`ServeError::Overloaded`] by admission-time
    /// overload control (estimate-shed plus shed-oldest victims).
    pub shed_total: u64,
    /// Items answered by the brownout fallback plan (replies carried
    /// [`Reply::degraded`]).
    pub degraded_total: u64,
    /// EWMA of per-item service time in nanoseconds (α = 1/8) — the basis
    /// of the admission-time wait estimate. 0 until the first batch
    /// completes, during which estimate-shedding is disabled.
    pub ewma_service_ns: u64,
}

impl ServeStats {
    /// Mean samples per dispatched batch.
    ///
    /// Defined as **0.0 before the first dispatch** rather than the literal
    /// `0/0 = NaN`: these stats feed the `serve_latency` bench rows, and
    /// the `da_bench::json` schema (rightly) rejects non-finite metrics.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.items as f64 / self.batches as f64
        }
    }
}

/// An in-flight request handle returned by [`BatchServer::submit`].
#[must_use = "dropping a Pending discards the request's logits"]
pub struct Pending {
    rx: mpsc::Receiver<Result<Reply, ServeError>>,
}

impl Pending {
    /// Block until the request's batch executes and return the logits for
    /// this sample alone (shape `[classes...]`, no batch axis).
    pub fn wait(self) -> Result<Tensor, ServeError> {
        let reply = self.wait_reply()?;
        Ok(Tensor::from_vec(reply.data, &reply.shape))
    }

    /// [`wait`](Pending::wait) keeping the full [`Reply`] — the form that
    /// preserves the [`Reply::degraded`] brownout flag.
    pub fn wait_reply(self) -> Result<Reply, ServeError> {
        match self.rx.recv() {
            Ok(result) => result,
            // The worker (or server) went away without replying.
            Err(mpsc::RecvError) => Err(ServeError::ShuttingDown),
        }
    }
}

/// A thread-based micro-batching front end over [`InferencePlan`] replicas
/// (see the module docs for the batching contract).
pub struct BatchServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// The deadline-expiry sweep (see [`ServeConfig::default_deadline`]).
    sweeper: Option<JoinHandle<()>>,
    queue_capacity: usize,
    default_deadline: Option<Duration>,
    /// The source network's [`Network::plan_epoch`] at compile time.
    source_epoch: u64,
}

impl BatchServer {
    /// Compile one plan replica per worker from `network` and start serving.
    ///
    /// Returns `None` when the network has no compiled form (the same
    /// condition under which [`Network::plan`] returns `None`) — callers
    /// fall back to the per-layer path.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.queue_capacity` is zero.
    pub fn compile(network: &Network, config: ServeConfig) -> Option<BatchServer> {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be at least 1");
        // Read the epoch *before* compiling: a concurrent mutation mid-compile
        // then flags the server stale instead of going unnoticed.
        let source_epoch = network.plan_epoch();
        let replicas: Option<Vec<Arc<InferencePlan>>> = (0..config.workers.max(1))
            .map(|_| InferencePlan::compile(network, network.multiplier().cloned()).map(Arc::new))
            .collect();
        let mut replicas = replicas?;
        replicas.truncate(config.workers);
        Self::start(replicas, config, source_epoch)
    }

    /// [`compile`](BatchServer::compile) in **int8 mode**: the shard pool
    /// serves one [`InferencePlan::compile_quantized`] plan, calibrated on
    /// `calibration`, shared by every worker. Quantized plans carry
    /// multi-MiB product tables (and, for gate-level multipliers, a
    /// 65 536-product build cost), so workers share one snapshot instead of
    /// replicating it — plans are `&self` to execute and workspaces are
    /// pooled per call, so sharing adds no contention beyond the pool lock.
    ///
    /// The batching contract is unchanged: quantized plans are
    /// deterministic and run batch items independently, so served logits
    /// stay bit-identical to a serial
    /// [`InferencePlan::predict_batch`] on the same plan under any
    /// concurrent schedule (covered by `tests/quantized_plan.rs`).
    ///
    /// Returns `None` when the network cannot compile to a quantized plan
    /// (see [`InferencePlan::compile_quantized`]).
    ///
    /// # Panics
    ///
    /// Panics as [`compile`](BatchServer::compile) does, or if
    /// `calibration` is not a non-empty batch of the served shape.
    pub fn compile_quantized(
        network: &Network,
        calibration: &da_tensor::Tensor,
        config: ServeConfig,
    ) -> Option<BatchServer> {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be at least 1");
        let source_epoch = network.plan_epoch();
        let plan = Arc::new(InferencePlan::compile_quantized(
            network,
            network.multiplier().cloned(),
            calibration,
        )?);
        let replicas = vec![plan; config.workers];
        Self::start(replicas, config, source_epoch)
    }

    /// [`compile_quantized`](BatchServer::compile_quantized) in
    /// **int4-weight mode**: the shared snapshot is one
    /// [`InferencePlan::compile_quantized_int4`] plan — conv/dense layers
    /// serve the in-register shuffle GEMM over 256×16 tables where
    /// calibration allows, with per-layer int8 gather fallback (a
    /// mixed-precision snapshot; see [`InferencePlan::int4_layer_mix`]).
    /// The sharing rationale and the bit-identical batching contract are
    /// exactly [`compile_quantized`](BatchServer::compile_quantized)'s.
    ///
    /// Returns `None` when the network cannot compile to a quantized plan.
    ///
    /// # Panics
    ///
    /// Panics as [`compile_quantized`](BatchServer::compile_quantized) does.
    pub fn compile_quantized_int4(
        network: &Network,
        calibration: &da_tensor::Tensor,
        config: ServeConfig,
    ) -> Option<BatchServer> {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be at least 1");
        let source_epoch = network.plan_epoch();
        let plan = Arc::new(InferencePlan::compile_quantized_int4(
            network,
            network.multiplier().cloned(),
            calibration,
        )?);
        let replicas = vec![plan; config.workers];
        Self::start(replicas, config, source_epoch)
    }

    /// Serve an already-compiled (or snapshot-loaded) plan: every worker
    /// shards the same `Arc`, so a plan whose tables borrow an `mmap`ed
    /// snapshot is served by N workers over **one** mapping — no per-worker
    /// copy of the multi-MiB product tables or weight matrices.
    ///
    /// A plan served this way has no source [`Network`], so
    /// [`is_stale`](BatchServer::is_stale) reports `true` against *any*
    /// network (the sentinel epoch `u64::MAX` is never a real
    /// [`Network::plan_epoch`] value): staleness tracking is only
    /// meaningful for the `compile*` constructors.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.queue_capacity` is zero.
    pub fn from_plan(plan: Arc<InferencePlan>, config: ServeConfig) -> BatchServer {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be at least 1");
        let replicas = vec![plan; config.workers];
        Self::start(replicas, config, u64::MAX).expect("start never fails")
    }

    /// Map the plan snapshot at `path` (see [`crate::snapshot`]) and serve
    /// it via [`from_plan`](BatchServer::from_plan). This is the
    /// near-zero-cold-start path: no calibration, no LUT build, no weight
    /// copy — time-to-first-inference is dominated by the first batch
    /// itself.
    ///
    /// # Panics
    ///
    /// Panics as [`from_plan`](BatchServer::from_plan) does.
    pub fn from_snapshot(
        path: impl AsRef<std::path::Path>,
        config: ServeConfig,
    ) -> Result<BatchServer, crate::snapshot::SnapshotError> {
        let plan = Arc::new(InferencePlan::load(path)?);
        Ok(Self::from_plan(plan, config))
    }

    /// Shared startup: install the panic hook, park the plan replicas in
    /// the shard pool, and spawn one supervised worker per replica plus the
    /// deadline-expiry sweep. `source_epoch` is the network's
    /// [`Network::plan_epoch`] read *before* compiling, so a concurrent
    /// mutation mid-compile flags the server stale instead of going
    /// unnoticed.
    fn start(
        replicas: Vec<Arc<InferencePlan>>,
        config: ServeConfig,
        source_epoch: u64,
    ) -> Option<BatchServer> {
        install_quiet_panic_hook();
        let worker_count = replicas.len();
        let now = Instant::now();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { queue: VecDeque::new(), shutdown: false }),
            not_empty: Condvar::new(),
            space: Condvar::new(),
            counters: Counters::default(),
            plans: RwLock::new(replicas),
            fallback: RwLock::new(None),
            degraded: std::sync::atomic::AtomicBool::new(false),
            brownout: Mutex::new(BrownoutState { window_start: now, sheds: 0, last_shed: now }),
            brownout_cfg: BrownoutConfig {
                enter_sheds: config.brownout_enter_sheds.max(1),
                window: config.brownout_window,
                exit_quiet: config.brownout_exit_quiet,
            },
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = shared.clone();
                let max_batch = config.max_batch;
                let flush = FlushPolicy {
                    max: config.flush_deadline,
                    min: config.flush_deadline_min.min(config.flush_deadline),
                };
                std::thread::Builder::new()
                    .name(format!("da-serve-{i}"))
                    .spawn(move || supervised_worker(i, shared, max_batch, flush))
                    .expect("spawn serve worker")
            })
            .collect();
        let sweeper = {
            let shared = shared.clone();
            Some(
                std::thread::Builder::new()
                    .name("da-serve-sweep".to_string())
                    .spawn(move || sweeper_loop(shared))
                    .expect("spawn serve sweeper"),
            )
        };
        Some(BatchServer {
            shared,
            workers,
            sweeper,
            queue_capacity: config.queue_capacity,
            default_deadline: config.default_deadline,
            source_epoch,
        })
    }

    /// Queue one sample (`[C, H, W]` or `[features...]`, *no* batch axis),
    /// blocking while the queue is at capacity.
    ///
    /// Returns [`ServeError::ShuttingDown`] if the server stopped accepting
    /// requests while this call was blocked.
    pub fn submit(&self, item: &Tensor) -> Result<Pending, ServeError> {
        self.submit_deadline(item, None)
    }

    /// [`submit`](BatchServer::submit) with a per-request deadline
    /// overriding [`ServeConfig::default_deadline`]. A request still queued
    /// at `deadline` is shed with [`ServeError::DeadlineExceeded`]; one
    /// already expired at admission is rejected immediately.
    pub fn submit_deadline(
        &self,
        item: &Tensor,
        deadline: Option<Instant>,
    ) -> Result<Pending, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(item, true, deadline, ReplySink::channel(tx))?;
        Ok(Pending { rx })
    }

    /// Non-blocking [`submit`](BatchServer::submit): fails with
    /// [`ServeError::QueueFull`] instead of waiting for queue space.
    pub fn try_submit(&self, item: &Tensor) -> Result<Pending, ServeError> {
        self.try_submit_deadline(item, None)
    }

    /// [`try_submit`](BatchServer::try_submit) with a per-request deadline.
    /// This is the overload-controlled admission point: a deadline the
    /// backlog estimate already blows is refused with
    /// [`ServeError::Overloaded`] (carrying the retry hint), and on a full
    /// queue the earliest-deadline queued request is traded away when it is
    /// already doomed and deadline-sorts before this arrival (shed-oldest).
    pub fn try_submit_deadline(
        &self,
        item: &Tensor,
        deadline: Option<Instant>,
    ) -> Result<Pending, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(item, false, deadline, ReplySink::channel(tx))?;
        Ok(Pending { rx })
    }

    /// Non-blocking submit that delivers the reply to `on_reply` instead of
    /// a [`Pending`] channel — the submission form an event loop needs: the
    /// socket front end ([`crate::net`]) must never block its reactor
    /// thread, so completions are pushed to it (callback → completion queue
    /// → poller wakeup) rather than pulled with a blocking `recv`.
    ///
    /// `on_reply` runs exactly once, on the worker thread that executed the
    /// batch (or, on shutdown with queued requests, on the dropping
    /// thread) — keep it cheap and non-blocking. On `Err` (queue full /
    /// shutting down / already expired) the callback is dropped without
    /// being invoked; the caller still owns the request and decides whether
    /// to retry.
    pub fn try_submit_with(
        &self,
        item: &Tensor,
        on_reply: ReplyCallback,
    ) -> Result<(), ServeError> {
        self.enqueue(item, false, None, ReplySink::callback(on_reply))
    }

    /// [`try_submit_with`](BatchServer::try_submit_with) with a per-request
    /// deadline overriding [`ServeConfig::default_deadline`]. A request
    /// already expired at admission is rejected with
    /// [`ServeError::DeadlineExceeded`] (callback not invoked, like every
    /// other `Err` here); one that expires while queued gets the callback
    /// with that error instead of executing.
    pub fn try_submit_with_deadline(
        &self,
        item: &Tensor,
        deadline: Option<Instant>,
        on_reply: ReplyCallback,
    ) -> Result<(), ServeError> {
        self.enqueue(item, false, deadline, ReplySink::callback(on_reply))
    }

    fn enqueue(
        &self,
        item: &Tensor,
        block: bool,
        deadline: Option<Instant>,
        reply: ReplySink,
    ) -> Result<(), ServeError> {
        // `checked_add` because `Instant + Duration` panics on overflow and
        // the default deadline is operator-controlled; an unrepresentable
        // deadline means "never expires".
        let deadline =
            deadline.or_else(|| self.default_deadline.and_then(|d| Instant::now().checked_add(d)));
        // Deadline-aware admission: shed already-expired work before it
        // occupies queue space (the cheapest possible shed point).
        if let Some(d) = deadline {
            if Instant::now() >= d {
                reply.disarm();
                self.shared.counters.deadline_expired.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::DeadlineExceeded);
            }
        }
        let workers = self.workers.len();
        let ewma = self.shared.counters.ewma_service_ns.load(Ordering::Relaxed);
        // A shed-oldest victim is delivered *outside* the lock (its reply
        // sink is caller code).
        let mut victim: Option<(Request, Duration)> = None;
        {
            let mut st = lock_queue(&self.shared);
            // Estimate-shed first: refuse a deadline the current backlog
            // already blows, with the backlog-clearance estimate as the
            // retry hint — regardless of queue space, so a doomed arrival
            // never competes for (or evicts toward) a slot it cannot use.
            // Inactive until the EWMA warms up (first batch), so cold
            // starts and deadline-free traffic pay one relaxed load.
            if let Some(d) = deadline {
                if ewma > 0 && !st.shutdown {
                    let wait = estimated_wait(st.queue.len(), ewma, workers);
                    if Instant::now().checked_add(wait).is_none_or(|eta| eta > d) {
                        drop(st);
                        reply.disarm();
                        self.shared.counters.shed_total.fetch_add(1, Ordering::Relaxed);
                        note_shed(&self.shared);
                        return Err(ServeError::Overloaded { retry_after: wait });
                    }
                }
            }
            loop {
                if st.shutdown {
                    reply.disarm();
                    return Err(ServeError::ShuttingDown);
                }
                if st.queue.len() < self.queue_capacity {
                    break;
                }
                if !block {
                    // Shed-oldest: if the earliest-deadline queued request
                    // is already doomed by the wait estimate and
                    // deadline-sorts before this arrival, trade it away —
                    // the queue spends its last slot on work that can
                    // still make its deadline.
                    if let Some((pos, wait)) =
                        shed_oldest_candidate(&st.queue, deadline, ewma, workers)
                    {
                        if let Some(doomed) = st.queue.remove(pos) {
                            victim = Some((doomed, wait));
                            break;
                        }
                    }
                    reply.disarm();
                    return Err(ServeError::QueueFull);
                }
                st = self.shared.space.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            // Copy the sample only once admission is certain, so rejected
            // `try_submit`s never pay for it; the copy is µs-scale, cheap
            // enough to do under the lock.
            st.queue.push_back(Request {
                data: item.data().to_vec(),
                shape: item.shape().to_vec(),
                reply,
                deadline,
            });
        }
        if let Some((doomed, wait)) = victim {
            self.shared.counters.shed_total.fetch_add(1, Ordering::Relaxed);
            note_shed(&self.shared);
            doomed.reply.send(Err(ServeError::Overloaded { retry_after: wait }));
        }
        // Wake every waiting worker: one will dispatch, the rest re-check
        // (workers also wait here for partial batches to fill; the expiry
        // sweep re-arms its timer off the same wakeup).
        self.shared.not_empty.notify_all();
        Ok(())
    }

    /// Logits for one sample: [`submit`](BatchServer::submit) + wait.
    pub fn logits(&self, item: &Tensor) -> Result<Tensor, ServeError> {
        self.submit(item)?.wait()
    }

    /// Predicted class for one sample (the shared
    /// [`crate::loss::argmax_logits`] tie behavior).
    pub fn predict(&self, item: &Tensor) -> Result<usize, ServeError> {
        Ok(argmax_logits(self.logits(item)?.data()))
    }

    /// Serve a whole `[N, ...]` batch *through the request queue*: every
    /// item becomes one submission (interleaving freely with concurrent
    /// callers), and the rows are reassembled in submission order.
    /// Bit-identical to [`InferencePlan::predict_batch`] on a replica.
    ///
    /// A full queue is not an error here: submissions use the blocking
    /// [`submit`](BatchServer::submit), so backpressure stalls this caller
    /// (documented queue semantics) while workers drain. What *is*
    /// propagated is every failure a network caller could induce on a live
    /// server — shutdown racing the submission loop, or an execution
    /// failure — as a [`ServeError`] instead of the panic this method used
    /// to raise (a shut-down server would take the whole caller down).
    ///
    /// # Panics
    ///
    /// Panics only on caller bugs: a non-batched input or a server built
    /// with zero workers (whose queue can never drain).
    pub fn predict_batch(&self, x: &Tensor) -> Result<Tensor, ServeError> {
        assert!(x.shape().len() >= 2, "predict_batch expects a batched [N, ...] input");
        assert!(!self.workers.is_empty(), "predict_batch needs at least one worker");
        let n = x.shape()[0];
        let mut pending: Vec<Pending> = Vec::with_capacity(n);
        for i in 0..n {
            pending.push(self.submit(&x.batch_item(i))?);
        }
        let mut rows: Vec<Tensor> = Vec::with_capacity(n);
        for p in pending {
            rows.push(p.wait()?);
        }
        Ok(Tensor::stack(&rows))
    }

    /// Whether `network` has been invalidated since this server compiled its
    /// replicas (weights, multiplier, or training-mode statistics changed).
    ///
    /// A stale server keeps serving its compile-time snapshot — exactly like
    /// a held [`Arc`]`<`[`InferencePlan`]`>` — so callers decide when to
    /// rebuild. Only meaningful for the network the server was compiled
    /// from.
    pub fn is_stale(&self, network: &Network) -> bool {
        network.plan_epoch() != self.source_epoch
    }

    /// Worker-thread count (plan replicas).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        ServeStats {
            batches: c.batches.load(Ordering::Relaxed),
            items: c.items.load(Ordering::Relaxed),
            largest_batch: c.largest_batch.load(Ordering::Relaxed),
            failed_batches: c.failed_batches.load(Ordering::Relaxed),
            flush_deadline_ns: c.flush_deadline_ns.load(Ordering::Relaxed),
            worker_restarts: c.worker_restarts.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            generation: c.generation.load(Ordering::Relaxed),
            shed_total: c.shed_total.load(Ordering::Relaxed),
            degraded_total: c.degraded_total.load(Ordering::Relaxed),
            ewma_service_ns: c.ewma_service_ns.load(Ordering::Relaxed),
        }
    }

    /// Whether dispatch is currently degraded to the fallback plan (and
    /// applies the hysteretic recovery check as a side effect — the same
    /// check workers run per dispatch).
    pub fn degraded_active(&self) -> bool {
        brownout_active(&self.shared)
    }

    /// Install (or replace) the brownout **fallback plan** — the cheaper
    /// plan dispatch fails over to under sustained shed pressure (see
    /// [`ServeConfig::brownout_enter_sheds`]). The fallback must serve the
    /// same input/output interface as the primary; its *precision family*
    /// may differ — an int8 snapshot backing an f32 primary is the point
    /// (approximate answers beat no answers, and replies say so via
    /// [`Reply::degraded`]).
    pub fn set_fallback_plan(
        &self,
        plan: Arc<InferencePlan>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        let want = {
            let pool = self.shared.plans.read().unwrap_or_else(PoisonError::into_inner);
            pool.first().map(|p| p.interface())
        };
        if let Some(want) = want {
            let got = plan.interface();
            if got.input != want.input || got.output_features != want.output_features {
                return Err(crate::snapshot::SnapshotError::Incompatible(format!(
                    "fallback plan serves [{got}] but the primary serves [{want}]"
                )));
            }
        }
        *self.shared.fallback.write().unwrap_or_else(PoisonError::into_inner) = Some(plan);
        Ok(())
    }

    /// Map and validate the snapshot at `path`, then
    /// [`set_fallback_plan`](BatchServer::set_fallback_plan) it.
    pub fn set_fallback_from_snapshot(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        self.set_fallback_plan(Arc::new(InferencePlan::load(path)?))
    }

    /// Force the brownout state — a test/ops override. `on = true` enters
    /// degraded dispatch as if shed pressure had tripped it (and arms the
    /// quiet-period clock); `on = false` recovers immediately.
    #[doc(hidden)]
    pub fn force_degraded(&self, on: bool) {
        if on {
            let mut b = self.shared.brownout.lock().unwrap_or_else(PoisonError::into_inner);
            b.last_shed = Instant::now();
        }
        self.shared.degraded.store(on, Ordering::Relaxed);
    }

    /// Seed the per-item service EWMA — a test hook for exercising the
    /// admission-time estimate without warming the server first.
    #[doc(hidden)]
    pub fn force_ewma_service_ns(&self, ns: u64) {
        self.shared.counters.ewma_service_ns.store(ns, Ordering::Relaxed);
    }

    /// Current plan-pool generation: 0 until the first successful
    /// [`reload_plan`](BatchServer::reload_plan).
    pub fn generation(&self) -> u64 {
        self.shared.counters.generation.load(Ordering::Relaxed)
    }

    /// Atomically replace the shard pool with `plan` and return the new
    /// generation. The swap never drops a request: batches already
    /// executing finish on the plan they started with (their `Arc` keeps it
    /// alive), every batch dispatched after the swap runs on `plan`, and
    /// queued requests are untouched.
    ///
    /// The swap performs a **shape handshake**: a replacement whose
    /// serving interface ([`InferencePlan::interface`] — input constraint,
    /// logit width, or precision family) differs from the current plan's
    /// is rejected with [`SnapshotError::Incompatible`] and the old pool
    /// keeps serving, generation unchanged. Connected clients pipelining
    /// requests across the swap would otherwise silently start getting
    /// different shapes (or a different numeric contract) back.
    ///
    /// [`SnapshotError::Incompatible`]: crate::snapshot::SnapshotError::Incompatible
    pub fn reload_plan(
        &self,
        plan: Arc<InferencePlan>,
    ) -> Result<u64, crate::snapshot::SnapshotError> {
        {
            let mut pool = self.shared.plans.write().unwrap_or_else(PoisonError::into_inner);
            if let Some(current) = pool.first() {
                let want = current.interface();
                let got = plan.interface();
                if got != want {
                    return Err(crate::snapshot::SnapshotError::Incompatible(format!(
                        "replacement serves [{got}] but the current plan serves [{want}]"
                    )));
                }
            }
            let n = pool.len().max(1);
            *pool = vec![plan; n];
        }
        Ok(self.shared.counters.generation.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Hot reload: map and **fully validate** the plan snapshot at `path`,
    /// then [`reload_plan`](BatchServer::reload_plan) it. Validation —
    /// including the shape handshake — happens before any swap, so a torn,
    /// truncated, corrupt, or interface-incompatible replacement is
    /// rejected with the loader's [`SnapshotError`] and the current pool
    /// keeps serving — graceful degradation, generation unchanged.
    ///
    /// [`SnapshotError`]: crate::snapshot::SnapshotError
    pub fn reload_from_snapshot(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<u64, crate::snapshot::SnapshotError> {
        let plan = Arc::new(InferencePlan::load(path)?);
        self.reload_plan(plan)
    }

    /// Stop accepting requests without blocking: submitters (including ones
    /// currently blocked on backpressure) fail with
    /// [`ServeError::ShuttingDown`], and workers exit once the queue
    /// drains. Dropping the server still joins the workers.
    pub fn begin_shutdown(&self) {
        {
            let mut st = lock_queue(&self.shared);
            st.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.space.notify_all();
    }

    /// Stop accepting requests, drain the queue, and join the workers
    /// (equivalent to dropping the server, but explicit at call sites).
    pub fn shutdown(self) {}
}

impl Drop for BatchServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(sweeper) = self.sweeper.take() {
            let _ = sweeper.join();
        }
        // Workers drain the queue before exiting; with zero workers (or if a
        // worker thread died), fail whatever is left.
        let mut st = lock_queue(&self.shared);
        for request in st.queue.drain(..) {
            request.reply.send(Err(ServeError::ShuttingDown));
        }
    }
}

impl std::fmt::Debug for BatchServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchServer")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.queue_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

/// The adaptive flush-deadline policy a worker applies between batches
/// (see [`ServeConfig::flush_deadline`]).
#[derive(Debug, Clone, Copy)]
struct FlushPolicy {
    /// Ceiling (and the starting deadline): `ServeConfig::flush_deadline`.
    max: Duration,
    /// Floor under load, already clamped to `max` at server start.
    min: Duration,
}

impl FlushPolicy {
    /// The next deadline after dispatching a batch: a batch that `filled`
    /// to `max_batch` means the server is loaded and waiting buys nothing
    /// (halve, toward `min`); a partial flush means traffic is sparse and a
    /// longer window may coalesce stragglers (double, toward `max`).
    ///
    /// Saturating on purpose: `cur * 2` on a `Duration` near the type's
    /// ceiling would otherwise panic, and `cur / 2` of a sub-nanosecond
    /// deadline must floor at `min`, not wrap.
    fn adapt(&self, cur: Duration, filled: bool) -> Duration {
        if self.max.is_zero() {
            return Duration::ZERO;
        }
        if filled {
            (cur / 2).max(self.min)
        } else {
            // Doubling zero is zero: with a zero `min` the halving branch
            // can reach an exactly-zero deadline, and regrowth must restart
            // from a minimum quantum or the policy is pinned at the floor
            // forever after one loaded spell.
            cur.max(Duration::from_nanos(1)).saturating_mul(2).min(self.max)
        }
    }
}

/// Worker supervision: run [`worker_loop`] and, if a panic escapes it
/// (poisoned mutex included — every lock site recovers), count the restart
/// and re-enter the loop with a fresh plan handle from the shard pool. The
/// dying iteration's in-flight requests were already failed with
/// [`ServeError::WorkerDied`] by their [`ReplySink`] drop guards as the
/// panic unwound, so no caller hangs across the restart.
fn supervised_worker(index: usize, shared: Arc<Shared>, max_batch: usize, flush: FlushPolicy) {
    loop {
        let result =
            catch_unwind(AssertUnwindSafe(|| worker_loop(index, &shared, max_batch, flush)));
        // The panic may have unwound past the quiet-hook flag set; clear it
        // so genuine later panics on this thread still print.
        IN_PLAN_EXECUTION.with(|flag| flag.set(false));
        match result {
            Ok(()) => return, // clean shutdown
            Err(_) => {
                shared.counters.worker_restarts.fetch_add(1, Ordering::Relaxed);
                if lock_queue(&shared).shutdown {
                    return;
                }
            }
        }
    }
}

/// One worker: wait for requests, form a batch (FIFO, same-shape prefix, up
/// to `max_batch`, holding up to the adaptive flush deadline for it to
/// fill), shed expired members, execute the rest on this worker's plan
/// replica (fetched from the shard pool per batch, so hot reloads take
/// effect at the next dispatch), and reply per request.
fn worker_loop(index: usize, shared: &Arc<Shared>, max_batch: usize, flush: FlushPolicy) {
    let mut deadline = flush.max;
    loop {
        let (batch, filled): (Vec<Request>, bool) = {
            let mut st = lock_queue(shared);
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = shared.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            if !deadline.is_zero() && st.queue.len() < max_batch && !st.shutdown {
                // `checked_add` instead of `+`: Instant + Duration panics on
                // overflow, and the deadline is caller-controlled. An
                // unrepresentable deadline waits until the batch fills or
                // shutdown — semantically "infinite", which is what a
                // far-future Instant would have meant anyway.
                let until = Instant::now().checked_add(deadline);
                loop {
                    if st.queue.len() >= max_batch || st.shutdown {
                        break;
                    }
                    match until {
                        None => {
                            st = shared.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner)
                        }
                        Some(until) => {
                            // Re-read the clock on every re-arm (spurious
                            // wakeups and early notifies land here): once
                            // `now` has caught up to `until`, flush — a
                            // saturated zero timeout would otherwise spin.
                            let now = Instant::now();
                            if now >= until {
                                break;
                            }
                            let (guard, _timeout) = shared
                                .not_empty
                                .wait_timeout(st, until.saturating_duration_since(now))
                                .unwrap_or_else(PoisonError::into_inner);
                            st = guard;
                        }
                    }
                }
            }
            // Another worker may have drained the queue while this one slept.
            if st.queue.is_empty() {
                continue;
            }
            let shape = st.queue.front().expect("non-empty queue").shape.clone();
            let take = st
                .queue
                .iter()
                .take(max_batch)
                .take_while(|request| request.shape == shape)
                .count();
            let drained: Vec<Request> = st.queue.drain(..take).collect();
            drop(st);
            shared.space.notify_all();
            let filled = drained.len() >= max_batch;
            (drained, filled)
        };
        shared.counters.flush_deadline_ns.store(deadline.as_nanos() as u64, Ordering::Relaxed);
        deadline = flush.adapt(deadline, filled);
        // Deadline-aware dispatch: requests that expired while queued are
        // shed *before* execution, not run late.
        let now = Instant::now();
        let (expired, batch): (Vec<Request>, Vec<Request>) =
            batch.into_iter().partition(|r| r.deadline.is_some_and(|d| d <= now));
        if !expired.is_empty() {
            shared.counters.deadline_expired.fetch_add(expired.len() as u64, Ordering::Relaxed);
            for request in expired {
                request.reply.send(Err(ServeError::DeadlineExceeded));
            }
        }
        if batch.is_empty() {
            continue;
        }
        // Service time is measured from here — *including* the failpoint
        // site, so an injected `Delay` inflates the EWMA exactly like a
        // genuinely slow batch and admission control reacts to it.
        let dispatch_start = Instant::now();
        let n_items = batch.len() as u64;
        // Chaos-test injection site (no-op unless the `failpoints` feature
        // is on): an `Err` fault fails this batch like an execution error, a
        // `Panic` fault models a worker crash with requests in flight (the
        // supervisor path), a `Delay` fault models a slow batch.
        if let Some(msg) = da_failpoints::check("serve/worker_batch") {
            shared.counters.failed_batches.fetch_add(1, Ordering::Relaxed);
            for request in batch {
                request.reply.send(Err(ServeError::Execution(msg.clone())));
            }
            continue;
        }
        // Brownout: under sustained shed pressure dispatch fails over to
        // the fallback plan (when one is installed); replies say so.
        let degraded = brownout_active(shared)
            .then(|| shared.fallback.read().unwrap_or_else(PoisonError::into_inner).clone())
            .flatten();
        let (plan, degraded) = match degraded {
            Some(fallback) => (fallback, true),
            None => {
                let pool = shared.plans.read().unwrap_or_else(PoisonError::into_inner);
                if pool.is_empty() {
                    // Unreachable in practice (a zero-worker server runs no
                    // worker loops), but never index an empty pool.
                    continue;
                }
                (pool[index % pool.len()].clone(), false)
            }
        };
        run_batch(&plan, batch, &shared.counters, degraded);
        observe_service_time(&shared.counters, dispatch_start.elapsed(), n_items);
    }
}

/// Fold one batch's wall time into the per-item service EWMA (α = 1/8).
/// The racy load/store pair is deliberate: workers are few, the value is
/// an admission *estimate*, and a lost update costs one sample.
fn observe_service_time(counters: &Counters, elapsed: Duration, items: u64) {
    if items == 0 {
        return;
    }
    let sample = ((elapsed.as_nanos() as u64) / items).max(1);
    let old = counters.ewma_service_ns.load(Ordering::Relaxed);
    let new = if old == 0 { sample } else { old - old / 8 + sample / 8 };
    counters.ewma_service_ns.store(new, Ordering::Relaxed);
}

/// The deadline-expiry sweep: a low-duty background thread that fails
/// requests still *queued* past their deadline. Workers already shed
/// expired requests at dispatch; this sweep covers the case where no
/// worker ever gets to them (all workers wedged in a long batch, or a
/// zero-worker server) so a deadline is honored no matter what — the
/// "stranded callback can never hang its caller" guarantee.
fn sweeper_loop(shared: Arc<Shared>) {
    loop {
        let expired: Vec<Request> = {
            let mut st = lock_queue(&shared);
            loop {
                if st.shutdown {
                    return;
                }
                let now = Instant::now();
                let mut expired = Vec::new();
                let mut i = 0;
                while i < st.queue.len() {
                    if st.queue[i].deadline.is_some_and(|d| d <= now) {
                        if let Some(request) = st.queue.remove(i) {
                            expired.push(request);
                        }
                    } else {
                        i += 1;
                    }
                }
                if !expired.is_empty() {
                    break expired;
                }
                let earliest = st.queue.iter().filter_map(|r| r.deadline).min();
                match earliest {
                    // Nothing can expire until a new request arrives; every
                    // enqueue notifies `not_empty`, which re-runs this scan.
                    None => st = shared.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner),
                    Some(d) => {
                        let (guard, _timeout) = shared
                            .not_empty
                            .wait_timeout(st, d.saturating_duration_since(now))
                            .unwrap_or_else(PoisonError::into_inner);
                        st = guard;
                    }
                }
            }
        };
        // Deliver outside the lock: callbacks are caller code.
        shared.counters.deadline_expired.fetch_add(expired.len() as u64, Ordering::Relaxed);
        shared.space.notify_all();
        for request in expired {
            request.reply.send(Err(ServeError::DeadlineExceeded));
        }
    }
}

std::thread_local! {
    /// Set while a worker executes a plan, so the panic hook stays silent
    /// for the *anticipated* failure path (shape rejections become
    /// [`ServeError::Execution`], not log spam). Thread-local: panics on
    /// every other thread still print normally.
    static IN_PLAN_EXECUTION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once per process) a panic hook that defers to the previous hook
/// except while this thread is inside [`run_batch`]'s `catch_unwind`.
fn install_quiet_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_PLAN_EXECUTION.with(|flag| flag.get()) {
                previous(info);
            }
        }));
    });
}

/// Stack a same-shape batch, run it, and scatter the logits rows back to the
/// per-request channels. A panic anywhere in the stack-and-execute path —
/// including [`Tensor::from_vec`] rejecting an inconsistent shape, which
/// used to escape and kill the worker — fails every member of this batch
/// but leaves the worker serving.
fn run_batch(plan: &InferencePlan, batch: Vec<Request>, counters: &Counters, degraded: bool) {
    let n = batch.len();

    IN_PLAN_EXECUTION.with(|flag| flag.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| {
        let item_len = batch[0].data.len();
        let mut data = Vec::with_capacity(n * item_len);
        for request in &batch {
            data.extend_from_slice(&request.data);
        }
        let mut shape = vec![n];
        shape.extend_from_slice(&batch[0].shape);
        let input = Tensor::from_vec(data, &shape);
        plan.predict_batch(&input)
    }));
    IN_PLAN_EXECUTION.with(|flag| flag.set(false));
    match result {
        Ok(logits) => {
            // Count before replying: a caller that has already received its
            // logits must see them reflected in `stats()`.
            counters.batches.fetch_add(1, Ordering::Relaxed);
            counters.items.fetch_add(n as u64, Ordering::Relaxed);
            counters.largest_batch.fetch_max(n as u64, Ordering::Relaxed);
            if degraded {
                counters.degraded_total.fetch_add(n as u64, Ordering::Relaxed);
            }
            let out_shape: Vec<usize> = logits.shape()[1..].to_vec();
            let out_len: usize = out_shape.iter().product();
            for (i, request) in batch.into_iter().enumerate() {
                let row = logits.data()[i * out_len..(i + 1) * out_len].to_vec();
                // A dropped Pending is not an error; sinks absorb that.
                request.reply.send(Ok(Reply { data: row, shape: out_shape.clone(), degraded }));
            }
        }
        Err(payload) => {
            counters.failed_batches.fetch_add(1, Ordering::Relaxed);
            let msg = panic_message(payload);
            for request in batch {
                request.reply.send(Err(ServeError::Execution(msg.clone())));
            }
        }
    }
}

/// Best-effort text of a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use da_arith::MultiplierKind;
    use rand::SeedableRng;

    fn tiny_cnn(seed: u64) -> Network {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Network::new("serve-tiny")
            .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
            .push(Relu)
            .push(MaxPool2d::new(2, 2))
            .push(Flatten)
            .push(Dense::new(3 * 4 * 4, 5, &mut rng))
    }

    fn cfg(workers: usize, max_batch: usize, cap: usize) -> ServeConfig {
        ServeConfig {
            workers,
            max_batch,
            flush_deadline: Duration::ZERO,
            queue_capacity: cap,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn single_submission_matches_plan() {
        let mut net = tiny_cnn(3);
        net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
        let plan = net.plan().expect("compilable");
        let server = BatchServer::compile(&net, cfg(2, 4, 8)).expect("compilable");
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let x = Tensor::randn(&[1, 8, 8], 1.0, &mut rng);
        let got = server.logits(&x).expect("served");
        let want = plan.predict_batch(&Tensor::stack(std::slice::from_ref(&x)));
        assert_eq!(got.data(), want.data());
        assert_eq!(got.shape(), &[5]);
        assert_eq!(server.predict(&x).unwrap(), plan.predict(&Tensor::stack(&[x]))[0]);
    }

    #[test]
    fn predict_batch_round_trips_through_the_queue() {
        let net = tiny_cnn(5);
        let plan = net.plan().expect("compilable");
        let server = BatchServer::compile(&net, cfg(2, 3, 4)).expect("compilable");
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let x = Tensor::randn(&[7, 1, 8, 8], 1.0, &mut rng);
        let got = server.predict_batch(&x).expect("served");
        let want = plan.predict_batch(&x);
        assert_eq!(got, want);
        let stats = server.stats();
        assert_eq!(stats.items, 7);
        assert!(stats.batches >= 1 && stats.batches <= 7, "{stats:?}");
        assert!(stats.mean_batch() >= 1.0);
    }

    /// Regression (issue 8): `mean_batch` on a server that has dispatched
    /// nothing must be 0.0, not the literal `0/0 = NaN` — the serve_latency
    /// JSON rows are built from it and the schema rejects non-finite
    /// metrics.
    #[test]
    fn mean_batch_is_zero_not_nan_before_first_dispatch() {
        let fresh = ServeStats {
            batches: 0,
            items: 0,
            largest_batch: 0,
            failed_batches: 0,
            flush_deadline_ns: 0,
            worker_restarts: 0,
            deadline_expired: 0,
            generation: 0,
            shed_total: 0,
            degraded_total: 0,
            ewma_service_ns: 0,
        };
        assert_eq!(fresh.mean_batch(), 0.0);
        assert!(fresh.mean_batch().is_finite());

        let net = tiny_cnn(11);
        let server = BatchServer::compile(&net, cfg(0, 1, 4)).expect("compilable");
        assert_eq!(server.stats().mean_batch(), 0.0);
        assert!(server.stats().mean_batch().is_finite());
    }

    /// Regression (issue 8): a shut-down server must fail `predict_batch`
    /// with a typed error, not panic the caller.
    #[test]
    fn predict_batch_propagates_shutdown_instead_of_panicking() {
        let net = tiny_cnn(13);
        let server = BatchServer::compile(&net, cfg(1, 2, 4)).expect("compilable");
        server.begin_shutdown();
        let x = Tensor::zeros(&[3, 1, 8, 8]);
        assert_eq!(server.predict_batch(&x).err(), Some(ServeError::ShuttingDown));
    }

    /// Regression (issue 8): the queue-full path is typed, never a panic —
    /// non-blocking submission surfaces `QueueFull`, and the blocking
    /// `predict_batch` documents-and-blocks until workers drain (checked
    /// here with a capacity smaller than the batch).
    #[test]
    fn queue_full_is_typed_and_predict_batch_blocks_through_it() {
        let net = tiny_cnn(17);
        let x1 = Tensor::zeros(&[1, 8, 8]);
        // Zero workers: the queue can only fill.
        let stuck = BatchServer::compile(&net, cfg(0, 1, 1)).expect("compilable");
        let _held = stuck.try_submit(&x1).expect("first fits");
        assert_eq!(stuck.try_submit(&x1).err(), Some(ServeError::QueueFull));
        assert_eq!(stuck.try_submit_with(&x1, Box::new(|_| {})).err(), Some(ServeError::QueueFull));
        // One worker, capacity 2 < batch 6: submissions backpressure and
        // complete (bounded: workers drain while the submitter blocks).
        let plan = net.plan().expect("compilable");
        let server = BatchServer::compile(&net, cfg(1, 2, 2)).expect("compilable");
        let mut rng = rand::rngs::StdRng::seed_from_u64(18);
        let x = Tensor::randn(&[6, 1, 8, 8], 1.0, &mut rng);
        let got = server.predict_batch(&x).expect("drains through backpressure");
        assert_eq!(got, plan.predict_batch(&x));
    }

    #[test]
    fn callback_submission_delivers_on_worker_thread() {
        let mut net = tiny_cnn(19);
        net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
        let plan = net.plan().expect("compilable");
        let server = BatchServer::compile(&net, cfg(1, 4, 8)).expect("compilable");
        let mut rng = rand::rngs::StdRng::seed_from_u64(20);
        let x = Tensor::randn(&[1, 8, 8], 1.0, &mut rng);
        let (tx, rx) = mpsc::channel();
        server
            .try_submit_with(
                &x,
                Box::new(move |reply| {
                    let _ = tx.send(reply);
                }),
            )
            .expect("queued");
        let reply = rx.recv().expect("callback ran").expect("served");
        let want = plan.predict_batch(&Tensor::stack(std::slice::from_ref(&x)));
        assert_eq!(reply.data.as_slice(), want.data());
        assert_eq!(reply.shape, vec![5]);
        assert!(!reply.degraded);
    }

    #[test]
    fn adaptive_deadline_shrinks_under_load_and_grows_when_idle() {
        let policy =
            FlushPolicy { max: Duration::from_micros(200), min: Duration::from_micros(25) };
        // Sustained load walks the deadline down to the floor...
        let mut cur = policy.max;
        for _ in 0..8 {
            cur = policy.adapt(cur, true);
        }
        assert_eq!(cur, policy.min);
        // ...and idle partial flushes walk it back to the ceiling.
        for _ in 0..8 {
            cur = policy.adapt(cur, false);
        }
        assert_eq!(cur, policy.max);
        // Saturation: doubling from near the Duration ceiling must not
        // panic, and a zero ceiling pins everything to zero.
        let huge = FlushPolicy { max: Duration::MAX, min: Duration::ZERO };
        assert_eq!(huge.adapt(Duration::MAX, false), Duration::MAX);
        let zero = FlushPolicy { max: Duration::ZERO, min: Duration::ZERO };
        assert_eq!(zero.adapt(Duration::from_secs(1), true), Duration::ZERO);
    }

    #[test]
    fn adaptive_deadline_recovers_from_a_zero_floor() {
        // A zero floor is legal configuration; sustained load halves the
        // deadline down to exactly zero...
        let policy = FlushPolicy { max: Duration::from_micros(200), min: Duration::ZERO };
        let mut cur = policy.max;
        for _ in 0..64 {
            cur = policy.adapt(cur, true);
        }
        assert_eq!(cur, Duration::ZERO, "halving with a zero floor must reach zero");
        // ...and sparse traffic must still regrow it: doubling zero forever
        // would pin the policy at an immediate-dispatch deadline for the
        // rest of the server's life.
        for _ in 0..64 {
            cur = policy.adapt(cur, false);
        }
        assert_eq!(cur, policy.max, "deadline must regrow after load pinned it at zero");
    }

    #[test]
    fn stats_expose_the_dispatch_deadline() {
        let net = tiny_cnn(23);
        let config = ServeConfig {
            workers: 1,
            max_batch: 2,
            flush_deadline: Duration::from_nanos(1),
            flush_deadline_min: Duration::from_nanos(1),
            queue_capacity: 8,
            ..ServeConfig::default()
        };
        let server = BatchServer::compile(&net, config).expect("compilable");
        let x = Tensor::zeros(&[1, 8, 8]);
        server.logits(&x).expect("served");
        assert_eq!(server.stats().flush_deadline_ns, 1);
    }

    #[test]
    fn zero_worker_server_applies_backpressure_and_fails_on_shutdown() {
        let net = tiny_cnn(7);
        let server = BatchServer::compile(&net, cfg(0, 1, 2)).expect("compilable");
        let x = Tensor::zeros(&[1, 8, 8]);
        let a = server.try_submit(&x).expect("first fits");
        let b = server.try_submit(&x).expect("second fits");
        assert_eq!(server.try_submit(&x).err(), Some(ServeError::QueueFull));
        server.shutdown();
        assert_eq!(a.wait().err(), Some(ServeError::ShuttingDown));
        assert_eq!(b.wait().err(), Some(ServeError::ShuttingDown));
    }

    #[test]
    fn uncompilable_network_declines() {
        struct Opaque;
        impl crate::Layer for Opaque {
            fn name(&self) -> &'static str {
                "opaque"
            }
            fn forward(&self, x: &Tensor, _mode: crate::Mode) -> (Tensor, crate::Cache) {
                (x.clone(), crate::Cache::none())
            }
            fn backward(&self, _cache: &crate::Cache, grad: &Tensor) -> (Tensor, Vec<Tensor>) {
                (grad.clone(), Vec::new())
            }
        }
        let net = Network::new("opaque").push(Opaque);
        assert!(BatchServer::compile(&net, cfg(1, 1, 1)).is_none());
        assert!(BatchServer::compile(&net, cfg(0, 1, 1)).is_none());
    }

    #[test]
    fn config_default_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.max_batch >= 1);
        assert!(cfg.queue_capacity >= cfg.workers);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ServeError::QueueFull.to_string().contains("full"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting down"));
        assert!(ServeError::Execution("boom".into()).to_string().contains("boom"));
        assert!(ServeError::DeadlineExceeded.to_string().contains("deadline"));
        assert!(ServeError::WorkerDied.to_string().contains("worker died"));
        assert!(ServeError::Overloaded { retry_after: Duration::from_millis(5) }
            .to_string()
            .contains("overloaded"));
    }

    /// The per-item service EWMA warms up from real batches and feeds
    /// `stats()`.
    #[test]
    fn ewma_service_time_warms_up_after_batches() {
        let net = tiny_cnn(53);
        let server = BatchServer::compile(&net, cfg(1, 4, 8)).expect("compilable");
        assert_eq!(server.stats().ewma_service_ns, 0, "cold server has no estimate");
        let x = Tensor::zeros(&[1, 8, 8]);
        for _ in 0..3 {
            server.logits(&x).expect("served");
        }
        assert!(server.stats().ewma_service_ns > 0, "EWMA must warm up after dispatches");
    }

    /// Estimate-shed: a deadline the backlog estimate already blows is
    /// refused at admission with a typed `Overloaded` + retry hint, while
    /// deadline-free requests are untouched by the estimator.
    #[test]
    fn estimate_shed_rejects_doomed_deadlines_at_admission() {
        let net = tiny_cnn(59);
        let server = BatchServer::compile(&net, cfg(0, 1, 8)).expect("compilable");
        // Pretend every item takes 1 s; a 5 ms deadline is then hopeless.
        server.force_ewma_service_ns(1_000_000_000);
        let x = Tensor::zeros(&[1, 8, 8]);
        let doomed = Instant::now() + Duration::from_millis(5);
        match server.submit_deadline(&x, Some(doomed)).err() {
            Some(ServeError::Overloaded { retry_after }) => {
                assert!(retry_after >= Duration::from_millis(500), "{retry_after:?}");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(server.stats().shed_total, 1);
        assert_eq!(server.stats().deadline_expired, 0, "shed ≠ expired");
        // No deadline → the estimator never runs; the request queues.
        let _pending = server.submit(&x).expect("deadline-free requests are untouched");
        server.begin_shutdown();
    }

    /// Shed-oldest: a full queue trades its doomed earliest-deadline
    /// request for a newer arrival that deadline-sorts after it.
    #[test]
    fn shed_oldest_trades_doomed_queued_work_for_new_arrivals() {
        let net = tiny_cnn(61);
        let server = BatchServer::compile(&net, cfg(0, 1, 1)).expect("compilable");
        let x = Tensor::zeros(&[1, 8, 8]);
        // Admit A while the estimate is still cold...
        let a = server
            .submit_deadline(&x, Some(Instant::now() + Duration::from_millis(50)))
            .expect("admitted cold");
        // ...then learn that an item takes ~1 s: A is now doomed.
        server.force_ewma_service_ns(1_000_000_000);
        let b = server
            .try_submit_deadline(&x, Some(Instant::now() + Duration::from_secs(600)))
            .expect("queue full, but the doomed oldest is traded away");
        match a.wait_reply().err() {
            Some(ServeError::Overloaded { retry_after }) => {
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("victim must see Overloaded, got {other:?}"),
        }
        assert_eq!(server.stats().shed_total, 1);
        // No workers: the drain on drop is what answers B.
        drop(server);
        assert_eq!(b.wait_reply().err(), Some(ServeError::ShuttingDown));
    }

    /// A full queue of deadline-free work never trades: the FIFO contract
    /// for classic traffic is untouched by overload control.
    #[test]
    fn shed_oldest_never_touches_deadline_free_work() {
        let net = tiny_cnn(67);
        let server = BatchServer::compile(&net, cfg(0, 1, 1)).expect("compilable");
        server.force_ewma_service_ns(1_000_000_000);
        let x = Tensor::zeros(&[1, 8, 8]);
        let _held = server.try_submit(&x).expect("fills the queue");
        assert_eq!(
            server
                .try_submit_deadline(&x, Some(Instant::now() + Duration::from_secs(600)))
                .map(|_| ())
                .err(),
            Some(ServeError::QueueFull),
            "a deadline-free queue head is never shed"
        );
        server.begin_shutdown();
    }

    /// Brownout: degraded dispatch answers from the fallback plan
    /// (bit-identical to its serial run), flags the replies, counts them,
    /// and recovery restores the primary.
    #[test]
    fn brownout_fails_over_to_fallback_and_recovers() {
        let net_primary = tiny_cnn(71);
        let net_fallback = tiny_cnn(73); // same interface, different weights
        let plan_primary = net_primary.plan().expect("compilable");
        let plan_fallback =
            Arc::new(InferencePlan::compile(&net_fallback, None).expect("compilable"));
        let server = BatchServer::compile(&net_primary, cfg(1, 2, 8)).expect("compilable");
        server.set_fallback_plan(plan_fallback.clone()).expect("same interface installs");
        let mut rng = rand::rngs::StdRng::seed_from_u64(74);
        let x = Tensor::randn(&[1, 8, 8], 1.0, &mut rng);
        let want_primary = plan_primary.predict_batch(&Tensor::stack(std::slice::from_ref(&x)));
        let want_fallback = plan_fallback.predict_batch(&Tensor::stack(std::slice::from_ref(&x)));
        assert_ne!(want_primary.data(), want_fallback.data(), "seeds must differ");

        assert!(!server.degraded_active());
        let healthy = server.submit(&x).expect("queued").wait_reply().expect("served");
        assert!(!healthy.degraded);
        assert_eq!(healthy.data.as_slice(), want_primary.data());

        server.force_degraded(true);
        assert!(server.degraded_active());
        let degraded = server.submit(&x).expect("queued").wait_reply().expect("served");
        assert!(degraded.degraded, "brownout replies must carry the flag");
        assert_eq!(
            degraded.data.as_slice(),
            want_fallback.data(),
            "degraded replies are bit-identical to the fallback plan's serial run"
        );
        assert!(server.stats().degraded_total >= 1);

        server.force_degraded(false);
        let recovered = server.submit(&x).expect("queued").wait_reply().expect("served");
        assert!(!recovered.degraded);
        assert_eq!(recovered.data.as_slice(), want_primary.data());
    }

    /// Sustained shed pressure trips the brownout via `note_shed` — no
    /// test hook, the production path.
    #[test]
    fn shed_pressure_trips_brownout_when_fallback_installed() {
        let net = tiny_cnn(79);
        let config = ServeConfig {
            brownout_enter_sheds: 2,
            brownout_window: Duration::from_secs(60),
            brownout_exit_quiet: Duration::from_secs(60),
            ..cfg(0, 1, 8)
        };
        let server = BatchServer::compile(&net, config).expect("compilable");
        let fallback = Arc::new(InferencePlan::compile(&net, None).expect("compilable"));
        server.set_fallback_plan(fallback).expect("installs");
        server.force_ewma_service_ns(1_000_000_000);
        let x = Tensor::zeros(&[1, 8, 8]);
        for _ in 0..2 {
            let doomed = Instant::now() + Duration::from_millis(1);
            assert!(matches!(
                server.submit_deadline(&x, Some(doomed)).err(),
                Some(ServeError::Overloaded { .. })
            ));
        }
        assert!(server.degraded_active(), "2 sheds inside the window must trip the brownout");
        server.force_degraded(false);
    }

    /// Without a fallback plan installed, shed pressure never degrades —
    /// there is nothing to degrade *to*.
    #[test]
    fn brownout_needs_a_fallback_plan() {
        let net = tiny_cnn(83);
        let config = ServeConfig { brownout_enter_sheds: 1, ..cfg(0, 1, 8) };
        let server = BatchServer::compile(&net, config).expect("compilable");
        server.force_ewma_service_ns(1_000_000_000);
        let x = Tensor::zeros(&[1, 8, 8]);
        let doomed = Instant::now() + Duration::from_millis(1);
        assert!(server.submit_deadline(&x, Some(doomed)).is_err());
        assert!(!server.degraded_active());
    }

    /// The fallback handshake matches input/output but deliberately *not*
    /// the precision family (an int8 fallback behind an f32 primary is the
    /// intended use).
    #[test]
    fn fallback_handshake_rejects_interface_mismatch() {
        let net = tiny_cnn(89);
        let server = BatchServer::compile(&net, cfg(1, 2, 8)).expect("compilable");
        // Different logit width → rejected.
        let mut rng = rand::rngs::StdRng::seed_from_u64(90);
        let wide = Network::new("wide")
            .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
            .push(Relu)
            .push(MaxPool2d::new(2, 2))
            .push(Flatten)
            .push(Dense::new(3 * 4 * 4, 7, &mut rng));
        let wide_plan = Arc::new(InferencePlan::compile(&wide, None).expect("compilable"));
        match server.set_fallback_plan(wide_plan) {
            Err(crate::snapshot::SnapshotError::Incompatible(msg)) => {
                assert!(msg.contains("7"), "{msg}");
            }
            other => panic!("expected Incompatible, got {other:?}"),
        }
    }

    /// The hot-reload shape handshake: an interface-incompatible
    /// replacement is rejected with a typed error, the generation does not
    /// move, and the old plan keeps serving.
    #[test]
    fn reload_plan_rejects_interface_mismatch() {
        let net = tiny_cnn(97);
        let plan = net.plan().expect("compilable");
        let server = BatchServer::compile(&net, cfg(1, 2, 8)).expect("compilable");
        let mut rng = rand::rngs::StdRng::seed_from_u64(98);
        let wide = Network::new("wide")
            .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
            .push(Relu)
            .push(MaxPool2d::new(2, 2))
            .push(Flatten)
            .push(Dense::new(3 * 4 * 4, 9, &mut rng));
        let wide_plan = Arc::new(InferencePlan::compile(&wide, None).expect("compilable"));
        assert!(matches!(
            server.reload_plan(wide_plan),
            Err(crate::snapshot::SnapshotError::Incompatible(_))
        ));
        assert_eq!(server.generation(), 0, "a rejected reload must not bump the generation");
        let x = Tensor::randn(&[1, 8, 8], 1.0, &mut rng);
        let want = plan.predict_batch(&Tensor::stack(std::slice::from_ref(&x)));
        assert_eq!(
            server.logits(&x).expect("old plan keeps serving").data(),
            want.data(),
            "the previous plan must keep serving bit-identically after a rejected reload"
        );
    }

    /// An already-expired deadline is rejected at admission — typed, never
    /// queued, counted in stats.
    #[test]
    fn expired_deadline_is_shed_at_admission() {
        let net = tiny_cnn(29);
        let server = BatchServer::compile(&net, cfg(0, 1, 4)).expect("compilable");
        let x = Tensor::zeros(&[1, 8, 8]);
        let past = Instant::now() - Duration::from_millis(10);
        assert_eq!(
            server.submit_deadline(&x, Some(past)).err(),
            Some(ServeError::DeadlineExceeded)
        );
        let invoked = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = invoked.clone();
        let err = server.try_submit_with_deadline(
            &x,
            Some(past),
            Box::new(move |_| flag.store(true, Ordering::SeqCst)),
        );
        assert_eq!(err.err(), Some(ServeError::DeadlineExceeded));
        // Documented contract: on `Err` the callback is never invoked.
        assert!(!invoked.load(Ordering::SeqCst));
        assert_eq!(server.stats().deadline_expired, 2);
    }

    /// The expiry sweep unblocks a queued request on a server whose workers
    /// never dispatch it (zero workers) — the no-hang guarantee.
    #[test]
    fn sweeper_expires_stranded_requests() {
        let net = tiny_cnn(31);
        let server = BatchServer::compile(&net, cfg(0, 1, 4)).expect("compilable");
        let x = Tensor::zeros(&[1, 8, 8]);
        let deadline = Instant::now() + Duration::from_millis(30);
        let pending = server.submit_deadline(&x, Some(deadline)).expect("queued");
        // Blocks until the sweep fires; a hang here is the regression.
        assert_eq!(pending.wait().err(), Some(ServeError::DeadlineExceeded));
        assert_eq!(server.stats().deadline_expired, 1);
    }

    /// `default_deadline` applies to plain `submit` calls with no explicit
    /// per-request deadline.
    #[test]
    fn default_deadline_covers_plain_submits() {
        let net = tiny_cnn(37);
        let config =
            ServeConfig { default_deadline: Some(Duration::from_millis(25)), ..cfg(0, 1, 4) };
        let server = BatchServer::compile(&net, config).expect("compilable");
        let pending = server.submit(&Tensor::zeros(&[1, 8, 8])).expect("queued");
        assert_eq!(pending.wait().err(), Some(ServeError::DeadlineExceeded));
    }

    /// Hot reload swaps the plan pool atomically: requests before the swap
    /// serve generation-0 logits, requests after serve the new plan's —
    /// each bit-identical to its own plan's serial run.
    #[test]
    fn reload_plan_swaps_served_logits_and_bumps_generation() {
        let net_a = tiny_cnn(41);
        let net_b = tiny_cnn(43); // different seed → different weights
        let plan_a = net_a.plan().expect("compilable");
        let plan_b = net_b.plan().expect("compilable");
        let server = BatchServer::compile(&net_a, cfg(2, 4, 8)).expect("compilable");
        assert_eq!(server.generation(), 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let x = Tensor::randn(&[1, 8, 8], 1.0, &mut rng);
        let want_a = plan_a.predict_batch(&Tensor::stack(std::slice::from_ref(&x)));
        let want_b = plan_b.predict_batch(&Tensor::stack(std::slice::from_ref(&x)));
        assert_ne!(want_a.data(), want_b.data(), "seeds must differ");
        assert_eq!(server.logits(&x).expect("served").data(), want_a.data());
        let gen = server
            .reload_plan(Arc::new(InferencePlan::compile(&net_b, None).expect("compilable")))
            .expect("same interface swaps");
        assert_eq!(gen, 1);
        assert_eq!(server.generation(), 1);
        assert_eq!(server.stats().generation, 1);
        assert_eq!(server.logits(&x).expect("served").data(), want_b.data());
    }

    /// A poisoned queue mutex (panicking thread holding the lock) must not
    /// cascade: later submits and shutdown recover the state instead of
    /// panicking.
    #[test]
    fn poisoned_lock_does_not_cascade_into_submitters() {
        let net = tiny_cnn(47);
        let plan = net.plan().expect("compilable");
        let server = Arc::new(BatchServer::compile(&net, cfg(1, 2, 8)).expect("compilable"));
        // Poison the mutex from a scratch thread.
        let poisoner = server.clone();
        let _ = std::thread::spawn(move || {
            let _guard = lock_queue(&poisoner.shared);
            // Quiet hook: this panic is the test's point, not log spam.
            IN_PLAN_EXECUTION.with(|flag| flag.set(true));
            panic!("poison the serve queue lock");
        })
        .join();
        assert!(server.shared.state.is_poisoned());
        // The server still serves, bit-identically, and shuts down cleanly.
        let mut rng = rand::rngs::StdRng::seed_from_u64(48);
        let x = Tensor::randn(&[1, 8, 8], 1.0, &mut rng);
        let got = server.logits(&x).expect("served through poison");
        let want = plan.predict_batch(&Tensor::stack(std::slice::from_ref(&x)));
        assert_eq!(got.data(), want.data());
        server.begin_shutdown();
    }

    /// Dropping a `ReplySink` without sending (what a worker panic does to
    /// in-flight requests) delivers `WorkerDied` instead of stranding the
    /// caller.
    #[test]
    fn dropped_sink_delivers_worker_died() {
        let (tx, rx) = mpsc::channel();
        drop(ReplySink::channel(tx));
        assert_eq!(rx.recv().expect("drop guard delivered"), Err(ServeError::WorkerDied));
        // disarm() defuses the guard: nothing is delivered.
        let (tx, rx) = mpsc::channel::<Result<Reply, ServeError>>();
        ReplySink::channel(tx).disarm();
        assert!(rx.recv().is_err(), "disarmed sink must deliver nothing");
    }
}
