//! First-order optimizers: SGD (with momentum) and Adam — the two the paper
//! trains with (§5.1).

use da_tensor::Tensor;

/// An optimizer updating a flat list of parameters from matching gradients.
///
/// State (momentum/moment buffers) is keyed positionally, so a given
/// optimizer instance must always see the same parameter list.
pub trait Optimizer {
    /// Apply one update step. `params` and `grads` must align.
    ///
    /// # Panics
    ///
    /// Implementations panic on length or shape mismatches.
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]);
}

/// Stochastic gradient descent with optional classical momentum.
///
/// # Examples
///
/// ```
/// use da_nn::optim::{Optimizer, Sgd};
/// use da_tensor::Tensor;
///
/// let mut w = Tensor::from_vec(vec![1.0], &[1]);
/// let g = Tensor::from_vec(vec![0.5], &[1]);
/// Sgd::new(0.1).step(&mut [&mut w], &[g]);
/// assert!((w.data()[0] - 0.95).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) {
        assert_eq!(params.len(), grads.len(), "params/grads mismatch");
        if self.velocity.is_empty() && self.momentum > 0.0 {
            self.velocity = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
        }
        for (i, (p, g)) in params.iter_mut().zip(grads).enumerate() {
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                v.scale(self.momentum);
                v.add_scaled(g, 1.0);
                p.add_scaled(v, -self.lr);
            } else {
                p.add_scaled(g, -self.lr);
            }
        }
    }
}

/// Adam (Kingma & Ba) with the standard bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with defaults `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) {
        assert_eq!(params.len(), grads.len(), "params/grads mismatch");
        if self.m.is_empty() {
            self.m = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
            self.v = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (p, g)) in params.iter_mut().zip(grads).enumerate() {
            let m = &mut self.m[i];
            m.scale(self.beta1);
            m.add_scaled(g, 1.0 - self.beta1);
            let v = &mut self.v[i];
            v.scale(self.beta2);
            let g2 = g.map(|x| x * x);
            v.add_scaled(&g2, 1.0 - self.beta2);
            for ((pv, mv), vv) in p.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let mhat = mv / bc1;
                let vhat = vv / bc2;
                *pv -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(w) = (w - 3)² with gradient 2(w - 3).
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut w = Tensor::from_vec(vec![0.0], &[1]);
        for _ in 0..steps {
            let g = Tensor::from_vec(vec![2.0 * (w.data()[0] - 3.0)], &[1]);
            opt.step(&mut [&mut w], &[g]);
        }
        w.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = quadratic_descent(&mut Sgd::new(0.1), 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn momentum_accelerates_early_progress() {
        let plain = quadratic_descent(&mut Sgd::new(0.02), 20);
        let momentum = quadratic_descent(&mut Sgd::with_momentum(0.02, 0.9), 20);
        assert!(
            (momentum - 3.0).abs() < (plain - 3.0).abs(),
            "momentum {momentum} vs plain {plain}"
        );
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = quadratic_descent(&mut Adam::new(0.3), 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, Adam's first step is ≈ lr regardless of
        // gradient scale.
        let mut opt = Adam::new(0.5);
        let mut w = Tensor::from_vec(vec![10.0], &[1]);
        let g = Tensor::from_vec(vec![1e-3], &[1]);
        opt.step(&mut [&mut w], &[g]);
        assert!((w.data()[0] - 9.5).abs() < 1e-3, "w = {}", w.data()[0]);
    }

    #[test]
    #[should_panic(expected = "params/grads mismatch")]
    fn step_rejects_mismatched_lengths() {
        let mut w = Tensor::zeros(&[1]);
        Sgd::new(0.1).step(&mut [&mut w], &[]);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_nonpositive_lr() {
        let _ = Sgd::new(0.0);
    }
}
