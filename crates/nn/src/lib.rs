//! CNN substrate with pluggable (approximate) multipliers.
//!
//! This crate provides everything the paper's experiments need from a deep
//! learning framework, hand-rolled for an ecosystem without one:
//!
//! * [`layers`] — Conv2d and Dense (both with a pluggable
//!   [`da_arith::Multiplier`] for their forward inner products), MaxPool2d,
//!   ReLU, Flatten, Dropout, BatchNorm, and the DoReFa activation quantizer.
//! * [`network`] — a sequential [`Network`] with full backpropagation, the
//!   classifier API the attack suite targets, and multiplier swapping
//!   (`set_multiplier` *is* the Defensive Approximation deployment step: no
//!   retraining, the weights stay put).
//! * [`loss`] — softmax cross-entropy.
//! * [`optim`] — SGD (with momentum) and Adam.
//! * [`train`] — a deterministic mini-batch training loop.
//! * [`quant`] — DoReFa-style k-bit quantization for the Defensive
//!   Quantization baseline (paper §7.1).
//! * [`zoo`] — the paper's architectures: LeNet-5, the CIFAR-scale AlexNet,
//!   and the quantized ConvNet of Appendix B.
//! * [`io`] — self-contained binary weight serialization.
//!
//! ## Gradient semantics under approximation
//!
//! Forward passes honor the configured multiplier; backward passes always use
//! exact arithmetic over the stored (possibly approximate) activations. This
//! is the straight-through/BPDA estimator — exactly the "approximate
//! gradients" a white-box attacker of the paper's §5.3 has access to, since
//! the gate-level netlist has no useful analytic derivative.
//!
//! ## Arithmetic backend
//!
//! Every approximate inner product runs on the **batched arithmetic
//! backend** rather than one virtual call per MAC:
//!
//! * [`layers::gemm_with`] is a blocked, cache-tiled GEMM, generic over the
//!   multiplier. It distributes output rows over the scoped thread pool
//!   (`da_tensor::parallel`) and gives each worker its own
//!   [`da_arith::BatchKernel`] — a stateful slice kernel that amortizes
//!   operand decomposition and memoizes gate-level significand products
//!   across the whole GEMM (see `da_arith::batch`).
//! * [`layers::matmul_with`] is the `dyn`-boundary wrapper layers use; the
//!   `dyn Multiplier` is resolved once per row-slice, never per element.
//!   With [`da_arith::ExactMultiplier`] the monomorphized inner loop
//!   compiles to the native multiply-add loop.
//! * [`layers::matmul_with_scalar`] keeps the historical per-scalar loop as
//!   the semantic reference: the batched GEMM is property-tested
//!   (`tests/gemm_equivalence.rs`) to match it bit-for-bit for every
//!   [`da_arith::MultiplierKind`], including NaN/Inf/denormal/negative-zero
//!   inputs.
//!
//! `Conv2d` and `Dense` forwards route through this backend; batch items of
//! a convolution still parallelize at the item level, and the nested GEMM
//! then runs inline (the thread pool suppresses nested parallelism).
//!
//! ## Serving engine
//!
//! Evaluation-mode inference additionally runs on **compiled plans**
//! ([`engine::InferencePlan`]): the layer stack is walked once, weights are
//! pre-reshaped/pre-transposed and conv weights pre-decomposed into
//! [`da_arith::PreparedOperands`], convolutions execute as fused
//! conv+bias+ReLU tiles without materializing im2col columns, and
//! intermediates live in a reusable workspace arena.
//! [`Network::logits`] (and everything built on it: `predict`,
//! `probabilities`, `accuracy`, the attack harness's `predict_batch`)
//! transparently uses a cached plan and falls back to the per-layer
//! `forward` for layer stacks without compiled forms. Plans are
//! bit-identical to `forward(x, Mode::Eval)` for every multiplier kind
//! (property-tested in `tests/engine_equivalence.rs`).
//!
//! ## Cross-request batching
//!
//! On top of the engine, [`serve::BatchServer`] is a thread-based
//! micro-batching front end: concurrent callers submit single samples,
//! workers coalesce them (configurable batch size and flush deadline) and
//! execute them on a shard pool of plan replicas, replying through
//! per-request channels with backpressure when the queue fills. Batching
//! never changes a sample's logits — bit-identity under any concurrent
//! schedule is part of the contract (see [`serve`]'s module docs) and is
//! property-tested in `tests/serve_conformance.rs`.

pub mod engine;
pub mod io;
pub mod layers;
pub mod loss;
pub mod net;
pub mod network;
pub mod optim;
pub mod quant;
pub mod serve;
pub mod snapshot;
pub mod train;
pub mod zoo;

pub use engine::InferencePlan;
pub use layers::{Cache, Layer, Mode};
pub use network::Network;
pub use serve::{BatchServer, ServeConfig, ServeError};
pub use snapshot::{PlanCache, SnapshotError};
