//! The sequential [`Network`] container and the classifier API attacked by
//! `da-attacks`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use da_arith::Multiplier;
use da_tensor::Tensor;

use crate::engine::InferencePlan;
use crate::layers::{Cache, Layer, Mode};
use crate::loss::{argmax_logits, softmax, softmax_cross_entropy};

/// Cached compiled-plan state (see [`Network::plan`]).
enum PlanSlot {
    /// No current plan; compile on next use.
    Stale,
    /// A compiled plan matching the network's current weights/multiplier.
    Ready(Arc<InferencePlan>),
    /// The layer stack has no compiled form; don't retry until invalidated.
    Uncompilable,
}

/// A sequential stack of layers.
///
/// # Examples
///
/// ```
/// use da_nn::layers::{Dense, Relu};
/// use da_nn::Network;
/// use da_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = Network::new("tiny")
///     .push(Dense::new(4, 8, &mut rng))
///     .push(Relu)
///     .push(Dense::new(8, 3, &mut rng));
/// let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
/// assert_eq!(net.logits(&x).shape(), &[2, 3]);
/// ```
pub struct Network {
    name: String,
    layers: Vec<Box<dyn Layer>>,
    multiplier: Option<Arc<dyn Multiplier>>,
    /// Lazily compiled serving plan ([`crate::engine`]); invalidated on any
    /// mutation that could change evaluation-mode outputs.
    plan: Mutex<PlanSlot>,
    /// Monotonic plan-invalidation counter (see [`Network::plan_epoch`]).
    epoch: AtomicU64,
}

impl Network {
    /// An empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            layers: Vec::new(),
            multiplier: None,
            plan: Mutex::new(PlanSlot::Stale),
            epoch: AtomicU64::new(0),
        }
    }

    /// Append a layer (builder-style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self.invalidate_plan();
        self
    }

    /// The network's name (used in reports and cache keys).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the network (returns `self` for chaining).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The installed approximate multiplier, if any.
    pub fn multiplier(&self) -> Option<&Arc<dyn Multiplier>> {
        self.multiplier.as_ref()
    }

    /// Install (or clear, with `None`) the forward multiplier in every layer.
    ///
    /// This is the Defensive Approximation deployment step: the weights and
    /// architecture stay identical; only the hardware multiplier changes
    /// (paper §4).
    pub fn set_multiplier(&mut self, multiplier: Option<Arc<dyn Multiplier>>) {
        for layer in &mut self.layers {
            layer.set_multiplier(multiplier.clone());
        }
        self.multiplier = multiplier;
        self.invalidate_plan();
    }

    /// The layer stack (read-only; used by the serving engine's compiler).
    pub(crate) fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Drop the cached serving plan so the next inference recompiles.
    fn invalidate_plan(&self) {
        *self.plan.lock().expect("plan lock") = PlanSlot::Stale;
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Monotonic counter bumped by every plan invalidation
    /// ([`Network::push`], [`Network::set_multiplier`],
    /// [`Network::params_mut`], and training-mode forwards).
    ///
    /// Holders of compiled snapshots — a cached
    /// [`Arc`]`<`[`InferencePlan`]`>` or a [`crate::serve::BatchServer`]'s
    /// replica pool — record this at compile time and compare later to
    /// detect that the network has diverged from their snapshot (see
    /// [`crate::serve::BatchServer::is_stale`]).
    pub fn plan_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The compiled serving plan for the network's current state, compiling
    /// and caching it on first use. `None` if any layer has no compiled form
    /// (inference then falls back to the per-layer [`Network::forward`]).
    ///
    /// The cache is invalidated by [`Network::set_multiplier`],
    /// [`Network::params_mut`], and training-mode forwards (which update
    /// batch-norm running statistics).
    pub fn plan(&self) -> Option<Arc<InferencePlan>> {
        let mut slot = self.plan.lock().expect("plan lock");
        match &*slot {
            PlanSlot::Ready(plan) => Some(plan.clone()),
            PlanSlot::Uncompilable => None,
            PlanSlot::Stale => match InferencePlan::compile(self, self.multiplier.clone()) {
                Some(plan) => {
                    let plan = Arc::new(plan);
                    *slot = PlanSlot::Ready(plan.clone());
                    Some(plan)
                }
                None => {
                    *slot = PlanSlot::Uncompilable;
                    None
                }
            },
        }
    }

    /// Full forward pass returning the output and per-layer caches.
    pub fn forward(&self, x: &Tensor, mode: Mode) -> (Tensor, Vec<Cache>) {
        if mode.is_train() {
            // Training forwards update batch-norm running statistics, which
            // compiled plans snapshot.
            self.invalidate_plan();
        }
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut activ = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let (next, cache) = layer.forward(&activ, mode.for_layer(i));
            caches.push(cache);
            activ = next;
        }
        if mode.is_train() {
            // Invalidate again on the way out: a concurrent `logits` call
            // may have compiled (and cached) a plan from mid-update
            // statistics during this pass.
            self.invalidate_plan();
        }
        (activ, caches)
    }

    /// Backward pass from `∂L/∂output`, returning `∂L/∂input` and per-layer
    /// parameter gradients (innermost `Vec` aligned with each layer's
    /// `params()`).
    pub fn backward(&self, caches: &[Cache], grad_out: &Tensor) -> (Tensor, Vec<Vec<Tensor>>) {
        assert_eq!(caches.len(), self.layers.len(), "cache/layer count mismatch");
        let mut grads = vec![Vec::new(); self.layers.len()];
        let mut grad = grad_out.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let (gin, pgrads) = layer.backward(&caches[i], &grad);
            grads[i] = pgrads;
            grad = gin;
        }
        (grad, grads)
    }

    /// Inference logits for a `[N, ...]` batch.
    ///
    /// Runs on the compiled serving plan ([`crate::engine`]) when the layer
    /// stack supports it — bit-identical to the per-layer
    /// `forward(x, Mode::Eval)`, which remains the fallback (and the
    /// reference the plan is property-tested against).
    pub fn logits(&self, x: &Tensor) -> Tensor {
        match self.plan() {
            Some(plan) => plan.predict_batch(x),
            None => self.forward(x, Mode::Eval).0,
        }
    }

    /// Softmax class probabilities.
    pub fn probabilities(&self, x: &Tensor) -> Tensor {
        softmax(&self.logits(x))
    }

    /// Predicted class per batch item.
    pub fn predict(&self, x: &Tensor) -> Vec<usize> {
        let logits = self.logits(x);
        let k = logits.shape()[1];
        logits.data().chunks(k).map(argmax_logits).collect()
    }

    /// Fraction of `labels` predicted correctly.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the batch size.
    pub fn accuracy(&self, x: &Tensor, labels: &[usize]) -> f32 {
        let preds = self.predict(x);
        assert_eq!(preds.len(), labels.len(), "one label per item");
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        correct as f32 / labels.len() as f32
    }

    /// Cross-entropy loss and its gradient with respect to the *input* —
    /// the primitive every gradient-based attack builds on. Under an
    /// approximate multiplier this is the BPDA/straight-through gradient.
    pub fn input_gradient(&self, x: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let (logits, caches) = self.forward(x, Mode::Eval);
        let (loss, dlogits) = softmax_cross_entropy(&logits, labels);
        let (dx, _) = self.backward(&caches, &dlogits);
        (loss, dx)
    }

    /// Gradient of one logit (`class`) with respect to the input, per batch
    /// item — used by DeepFool and JSMA.
    pub fn class_gradient(&self, x: &Tensor, class: usize) -> Tensor {
        let (logits, caches) = self.forward(x, Mode::Eval);
        let (n, k) = (logits.shape()[0], logits.shape()[1]);
        assert!(class < k, "class {class} out of {k}");
        let mut seed = Tensor::zeros(&[n, k]);
        for i in 0..n {
            seed.data_mut()[i * k + class] = 1.0;
        }
        self.backward(&caches, &seed).0
    }

    /// Parameter views in layer order.
    pub fn params(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Mutable parameter views in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.invalidate_plan();
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    /// Per-layer kind names (for summaries and save-file validation).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Run the forward pass up to (and including) layer `upto`, returning the
    /// intermediate activation — used for feature-map inspection (Figure 16).
    ///
    /// # Panics
    ///
    /// Panics if `upto >= depth()`.
    pub fn activation_at(&self, x: &Tensor, upto: usize) -> Tensor {
        assert!(upto < self.layers.len(), "layer index out of range");
        let mut activ = x.clone();
        for layer in &self.layers[..=upto] {
            activ = layer.forward(&activ, Mode::Eval).0;
        }
        activ
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("name", &self.name)
            .field("layers", &self.layer_names())
            .field("multiplier", &self.multiplier.as_ref().map(|m| m.name()).unwrap_or("native"))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use da_arith::MultiplierKind;
    use rand::SeedableRng;

    fn tiny_cnn(rng: &mut rand::rngs::StdRng) -> Network {
        Network::new("tiny-cnn")
            .push(Conv2d::new(1, 4, 3, 1, 0, rng))
            .push(Relu)
            .push(MaxPool2d::new(2, 2))
            .push(Flatten)
            .push(Dense::new(4 * 3 * 3, 10, rng))
    }

    #[test]
    fn forward_shapes_through_a_cnn() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let net = tiny_cnn(&mut rng);
        let x = Tensor::randn(&[3, 1, 8, 8], 1.0, &mut rng);
        assert_eq!(net.logits(&x).shape(), &[3, 10]);
        assert_eq!(net.predict(&x).len(), 3);
    }

    #[test]
    fn probabilities_are_distributions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let net = tiny_cnn(&mut rng);
        let x = Tensor::randn(&[2, 1, 8, 8], 1.0, &mut rng);
        let p = net.probabilities(&x);
        for i in 0..2 {
            let s: f32 = p.data()[i * 10..(i + 1) * 10].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let net = tiny_cnn(&mut rng);
        let x = Tensor::randn(&[1, 1, 8, 8], 1.0, &mut rng);
        let labels = [7usize];
        let (_, grad) = net.input_gradient(&x, &labels);
        let eps = 1e-2f32;
        for i in (0..64).step_by(7) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let (lp, _) = net.input_gradient(&xp, &labels);
            let (lm, _) = net.input_gradient(&xm, &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "at {i}: {numeric} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn class_gradient_selects_single_logit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let net = tiny_cnn(&mut rng);
        let x = Tensor::randn(&[1, 1, 8, 8], 1.0, &mut rng);
        let g = net.class_gradient(&x, 3);
        assert_eq!(g.shape(), x.shape());
        let eps = 1e-2f32;
        let mut xp = x.clone();
        xp.data_mut()[10] += eps;
        let mut xm = x.clone();
        xm.data_mut()[10] -= eps;
        let numeric = (net.logits(&xp).data()[3] - net.logits(&xm).data()[3]) / (2.0 * eps);
        assert!((numeric - g.data()[10]).abs() < 2e-2 * (1.0 + numeric.abs()));
    }

    #[test]
    fn set_multiplier_changes_outputs_and_back() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut net = tiny_cnn(&mut rng);
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], 0.0, 1.0, &mut rng);
        let exact = net.logits(&x);
        net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
        assert_eq!(net.multiplier().map(|m| m.name()), Some("ax-fpm"));
        let approx = net.logits(&x);
        assert_ne!(exact, approx);
        net.set_multiplier(None);
        assert_eq!(net.logits(&x), exact, "clearing restores exact behaviour");
    }

    #[test]
    fn accuracy_counts_matches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let net = tiny_cnn(&mut rng);
        let x = Tensor::randn(&[4, 1, 8, 8], 1.0, &mut rng);
        let preds = net.predict(&x);
        assert_eq!(net.accuracy(&x, &preds), 1.0);
        let wrong: Vec<usize> = preds.iter().map(|&p| (p + 1) % 10).collect();
        assert_eq!(net.accuracy(&x, &wrong), 0.0);
    }

    #[test]
    fn activation_at_returns_intermediate_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let net = tiny_cnn(&mut rng);
        let x = Tensor::randn(&[1, 1, 8, 8], 1.0, &mut rng);
        assert_eq!(net.activation_at(&x, 0).shape(), &[1, 4, 6, 6]);
        assert_eq!(net.activation_at(&x, 2).shape(), &[1, 4, 3, 3]);
    }
}
