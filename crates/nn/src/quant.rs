//! DoReFa-style k-bit quantization — the substrate of the **Defensive
//! Quantization** baseline (paper §7.1, Appendix B; DoReFa-Net \[72\]).

use da_tensor::Tensor;

/// Uniform k-bit quantizer on `[0, 1]`:
/// `q_k(x) = round((2^k − 1) · x) / (2^k − 1)`.
///
/// # Panics
///
/// Panics if `bits` is zero or above 24 (levels must be exact in `f32`).
///
/// # Examples
///
/// ```
/// use da_nn::quant::quantize_k;
///
/// assert_eq!(quantize_k(0.0, 2), 0.0);
/// assert_eq!(quantize_k(1.0, 2), 1.0);
/// assert_eq!(quantize_k(0.4, 2), 1.0 / 3.0);
/// ```
pub fn quantize_k(x: f32, bits: u32) -> f32 {
    assert!((1..=24).contains(&bits), "bits must be in 1..=24");
    let levels = ((1u32 << bits) - 1) as f32;
    (levels * x).round() / levels
}

/// DoReFa weight transform: map latent weights through
/// `tanh`-normalization into `[0, 1]`, quantize, and expand to `[−1, 1]`:
///
/// `w_q = 2 · q_k( tanh(w) / (2·max|tanh(w)|) + ½ ) − 1`.
///
/// Gradients are handled straight-through by the calling layer.
///
/// # Panics
///
/// Panics if `bits` is out of range (see [`quantize_k`]).
pub fn dorefa_quantize_weights(w: &Tensor, bits: u32) -> Tensor {
    let max_tanh =
        w.data().iter().map(|v| v.tanh().abs()).fold(0.0f32, f32::max).max(f32::MIN_POSITIVE);
    w.map(|v| 2.0 * quantize_k(v.tanh() / (2.0 * max_tanh) + 0.5, bits) - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn quantize_k_hits_exact_levels() {
        for bits in [1u32, 2, 4, 8] {
            let levels = (1u32 << bits) - 1;
            for i in 0..=levels {
                let x = i as f32 / levels as f32;
                assert_eq!(quantize_k(x, bits), x, "level {i} at {bits} bits");
            }
        }
    }

    #[test]
    fn quantize_k_is_idempotent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let x: f32 = rand::Rng::gen_range(&mut rng, 0.0..1.0);
            let q = quantize_k(x, 4);
            assert_eq!(quantize_k(q, 4), q);
        }
    }

    #[test]
    fn quantize_error_is_bounded_by_half_step() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for bits in [2u32, 4, 8] {
            let step = 1.0 / ((1u32 << bits) - 1) as f32;
            for _ in 0..200 {
                let x: f32 = rand::Rng::gen_range(&mut rng, 0.0..1.0);
                assert!((quantize_k(x, bits) - x).abs() <= step / 2.0 + 1e-6);
            }
        }
    }

    #[test]
    fn dorefa_weights_live_in_unit_ball_on_levels() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let w = Tensor::randn(&[64], 2.0, &mut rng);
        let q = dorefa_quantize_weights(&w, 4);
        let levels = (1u32 << 4) - 1;
        for &v in q.data() {
            assert!((-1.0..=1.0).contains(&v));
            let scaled = (v + 1.0) / 2.0 * levels as f32;
            assert!((scaled - scaled.round()).abs() < 1e-4, "off-level {v}");
        }
    }

    #[test]
    fn dorefa_preserves_sign_and_order_of_extremes() {
        let w = Tensor::from_vec(vec![-3.0, -0.1, 0.1, 3.0], &[4]);
        let q = dorefa_quantize_weights(&w, 4);
        assert!(q.data()[0] < 0.0 && q.data()[3] > 0.0);
        assert!(q.data()[0] < q.data()[1]);
        assert!(q.data()[2] < q.data()[3]);
        // The largest-magnitude weights map to ±1.
        assert!((q.data()[0] + 1.0).abs() < 1e-6);
        assert!((q.data()[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn rejects_zero_bits() {
        let _ = quantize_k(0.5, 0);
    }
}
