//! Deterministic mini-batch training with data-parallel gradient computation.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use da_tensor::Tensor;

use crate::layers::Mode;
use crate::loss::softmax_cross_entropy;
use crate::optim::Optimizer;
use crate::Network;

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed for shuffling and stochastic layers.
    pub seed: u64,
    /// Print a line per epoch to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 5, batch_size: 32, seed: 0, verbose: false }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the training set after the final epoch.
    pub final_accuracy: f32,
}

/// Gather the rows of `xs` selected by `idxs` into a new batch tensor.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn gather_batch(xs: &Tensor, idxs: &[usize]) -> Tensor {
    let items: Vec<Tensor> = idxs.iter().map(|&i| xs.batch_item(i)).collect();
    Tensor::stack(&items)
}

/// Train `network` on `(xs, labels)` with cross-entropy loss.
///
/// Each mini-batch is sharded across available CPU cores; shard gradients are
/// recombined as a weighted average, so results are independent of the core
/// count up to floating-point reassociation.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch dimension of `xs`, or the
/// config is degenerate (zero epochs is allowed; zero batch size is not).
pub fn train(
    network: &mut Network,
    xs: &Tensor,
    labels: &[usize],
    config: &TrainConfig,
    optimizer: &mut dyn Optimizer,
) -> TrainReport {
    let n = xs.shape()[0];
    assert_eq!(labels.len(), n, "one label per training item");
    assert!(config.batch_size > 0, "batch size must be positive");

    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for (batch_idx, chunk) in order.chunks(config.batch_size).enumerate() {
            let seed = config.seed
                ^ (epoch as u64).wrapping_mul(0x9E37_79B9)
                ^ (batch_idx as u64).wrapping_mul(0x85EB_CA6B);
            let loss = train_step(network, xs, labels, chunk, seed, optimizer);
            loss_sum += loss as f64;
            batches += 1;
        }
        let epoch_loss = (loss_sum / batches.max(1) as f64) as f32;
        if config.verbose {
            eprintln!("[{}] epoch {epoch}: loss {epoch_loss:.4}", network.name());
        }
        epoch_losses.push(epoch_loss);
    }

    let final_accuracy = evaluate_accuracy(network, xs, labels, 256);
    TrainReport { epoch_losses, final_accuracy }
}

/// One optimizer step on the batch rows `chunk`. Returns the batch loss.
fn train_step(
    network: &mut Network,
    xs: &Tensor,
    labels: &[usize],
    chunk: &[usize],
    seed: u64,
    optimizer: &mut dyn Optimizer,
) -> f32 {
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
        .min(chunk.len().div_ceil(4).max(1));

    let shards: Vec<&[usize]> = chunk.chunks(chunk.len().div_ceil(threads)).collect();
    let results: Vec<(f32, Vec<Vec<Tensor>>, usize)> = if shards.len() <= 1 {
        vec![shard_gradients(network, xs, labels, chunk, seed)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .enumerate()
                .map(|(si, shard)| {
                    let net = &*network;
                    scope.spawn(move || {
                        shard_gradients(net, xs, labels, shard, seed.wrapping_add(si as u64))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("training shard panicked")).collect()
        })
    };

    // Weighted-average the shard gradients into the first one's buffers.
    let total: usize = results.iter().map(|r| r.2).sum();
    let mut iter = results.into_iter();
    let (mut loss, mut acc, first_count) = iter.next().expect("at least one shard");
    let w0 = first_count as f32 / total as f32;
    loss *= w0;
    for layer in &mut acc {
        for g in layer.iter_mut() {
            g.scale(w0);
        }
    }
    for (shard_loss, grads, count) in iter {
        let w = count as f32 / total as f32;
        loss += shard_loss * w;
        for (al, gl) in acc.iter_mut().zip(grads) {
            for (a, g) in al.iter_mut().zip(gl) {
                a.add_scaled(&g, w);
            }
        }
    }

    let flat: Vec<Tensor> = acc.into_iter().flatten().collect();
    let mut params = network.params_mut();
    optimizer.step(&mut params, &flat);
    loss
}

fn shard_gradients(
    network: &Network,
    xs: &Tensor,
    labels: &[usize],
    shard: &[usize],
    seed: u64,
) -> (f32, Vec<Vec<Tensor>>, usize) {
    let batch = gather_batch(xs, shard);
    let batch_labels: Vec<usize> = shard.iter().map(|&i| labels[i]).collect();
    let (logits, caches) = network.forward(&batch, Mode::Train { seed });
    let (loss, dlogits) = softmax_cross_entropy(&logits, &batch_labels);
    let (_, grads) = network.backward(&caches, &dlogits);
    (loss, grads, shard.len())
}

/// Accuracy evaluated in chunks (bounding peak memory on big sets).
pub fn evaluate_accuracy(network: &Network, xs: &Tensor, labels: &[usize], chunk: usize) -> f32 {
    let n = xs.shape()[0];
    assert_eq!(labels.len(), n, "one label per item");
    let mut correct = 0usize;
    let mut at = 0usize;
    while at < n {
        let end = (at + chunk).min(n);
        let idxs: Vec<usize> = (at..end).collect();
        let batch = gather_batch(xs, &idxs);
        let preds = network.predict(&batch);
        correct += preds.iter().zip(&labels[at..end]).filter(|(p, l)| p == l).count();
        at = end;
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::optim::{Adam, Sgd};
    use rand::Rng;

    /// A linearly separable 2-class problem in 2-D.
    fn toy_problem(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f32 = rng.gen_range(-1.0..1.0);
            let y: f32 = rng.gen_range(-1.0..1.0);
            data.extend([x, y]);
            labels.push(usize::from(x + y > 0.0));
        }
        (Tensor::from_vec(data, &[n, 2]), labels)
    }

    fn mlp(seed: u64) -> Network {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Network::new("toy-mlp")
            .push(Dense::new(2, 16, &mut rng))
            .push(Relu)
            .push(Dense::new(16, 2, &mut rng))
    }

    #[test]
    fn training_reaches_high_accuracy_on_separable_data() {
        let (xs, ys) = toy_problem(400, 1);
        let mut net = mlp(2);
        let config = TrainConfig { epochs: 30, batch_size: 32, seed: 3, verbose: false };
        let report = train(&mut net, &xs, &ys, &config, &mut Adam::new(0.01));
        assert!(report.final_accuracy > 0.95, "accuracy {}", report.final_accuracy);
        let first = report.epoch_losses.first().expect("losses");
        let last = report.epoch_losses.last().expect("losses");
        assert!(last < first, "loss must decrease: {first} -> {last}");
    }

    #[test]
    fn sgd_also_learns() {
        let (xs, ys) = toy_problem(300, 4);
        let mut net = mlp(5);
        let config = TrainConfig { epochs: 40, batch_size: 16, seed: 6, verbose: false };
        let report = train(&mut net, &xs, &ys, &config, &mut Sgd::with_momentum(0.05, 0.9));
        assert!(report.final_accuracy > 0.9, "accuracy {}", report.final_accuracy);
    }

    #[test]
    fn gather_batch_selects_rows() {
        let xs = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[4, 2]);
        let b = gather_batch(&xs, &[2, 0]);
        assert_eq!(b.shape(), &[2, 2]);
        assert_eq!(b.data(), &[4.0, 5.0, 0.0, 1.0]);
    }

    #[test]
    fn evaluate_accuracy_chunking_is_equivalent() {
        let (xs, ys) = toy_problem(100, 7);
        let net = mlp(8);
        let small = evaluate_accuracy(&net, &xs, &ys, 7);
        let big = evaluate_accuracy(&net, &xs, &ys, 1000);
        assert_eq!(small, big);
    }

    #[test]
    #[should_panic(expected = "one label per training item")]
    fn train_rejects_label_mismatch() {
        let (xs, _) = toy_problem(10, 9);
        let mut net = mlp(10);
        let config = TrainConfig::default();
        let _ = train(&mut net, &xs, &[0, 1], &config, &mut Sgd::new(0.1));
    }
}
