//! Property-based tests of the NN substrate: gradients, softmax laws,
//! quantization laws, and multiplier-swap invariants.

use proptest::prelude::*;
use rand::SeedableRng;

use da_nn::layers::{Conv2d, Dense, Layer, MaxPool2d, Mode, Relu};
use da_nn::loss::{softmax, softmax_cross_entropy};
use da_nn::quant::{dorefa_quantize_weights, quantize_k};
use da_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Softmax outputs are probability distributions for any logits.
    #[test]
    fn softmax_is_a_distribution(logits in proptest::collection::vec(-30.0f32..30.0, 8)) {
        let t = Tensor::from_vec(logits, &[2, 4]);
        let p = softmax(&t);
        for row in 0..2 {
            let s: f32 = p.data()[row * 4..(row + 1) * 4].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(p.data()[row * 4..(row + 1) * 4].iter().all(|&v| v >= 0.0));
        }
    }

    /// Cross-entropy gradient rows are mean-free and match finite differences
    /// at a random coordinate.
    #[test]
    fn cross_entropy_gradient_checks(
        logits in proptest::collection::vec(-5.0f32..5.0, 6),
        label in 0usize..3,
        coord in 0usize..6,
    ) {
        let t = Tensor::from_vec(logits, &[2, 3]);
        let labels = [label, (label + 1) % 3];
        let (_, grad) = softmax_cross_entropy(&t, &labels);
        for row in 0..2 {
            let s: f32 = grad.data()[row * 3..(row + 1) * 3].iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
        let eps = 1e-3f32;
        let mut tp = t.clone();
        tp.data_mut()[coord] += eps;
        let mut tm = t.clone();
        tm.data_mut()[coord] -= eps;
        let numeric = (softmax_cross_entropy(&tp, &labels).0
            - softmax_cross_entropy(&tm, &labels).0)
            / (2.0 * eps);
        prop_assert!((numeric - grad.data()[coord]).abs() < 5e-3);
    }

    /// Quantizer laws: idempotence, range preservation, level count.
    #[test]
    fn quantizer_laws(x in 0.0f32..1.0, bits in 1u32..9) {
        let q = quantize_k(x, bits);
        prop_assert!((0.0..=1.0).contains(&q));
        prop_assert_eq!(quantize_k(q, bits), q);
        let step = 1.0 / ((1u32 << bits) - 1) as f32;
        prop_assert!((q - x).abs() <= step / 2.0 + 1e-6);
    }

    /// DoReFa weights stay in [-1, 1] and preserve sign ordering of the
    /// extreme weights.
    #[test]
    fn dorefa_weight_laws(w in proptest::collection::vec(-4.0f32..4.0, 8), bits in 2u32..8) {
        let t = Tensor::from_vec(w, &[8]);
        let q = dorefa_quantize_weights(&t, bits);
        prop_assert!(q.data().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    /// ReLU backward is a projection: grad passes iff forward passed.
    #[test]
    fn relu_gradient_gates(x in proptest::collection::vec(-2.0f32..2.0, 12)) {
        let t = Tensor::from_vec(x.clone(), &[3, 4]);
        let (y, cache) = Relu.forward(&t, Mode::Eval);
        let (dx, _) = Relu.backward(&cache, &Tensor::ones(&[3, 4]));
        for i in 0..12 {
            prop_assert_eq!(y.data()[i] > 0.0, dx.data()[i] == 1.0);
            prop_assert_eq!(x[i] <= 0.0, dx.data()[i] == 0.0);
        }
    }

    /// Max pooling never invents values: every output equals some input.
    #[test]
    fn maxpool_outputs_are_inputs(x in proptest::collection::vec(-5.0f32..5.0, 16)) {
        let t = Tensor::from_vec(x.clone(), &[1, 1, 4, 4]);
        let (y, _) = MaxPool2d::new(2, 2).forward(&t, Mode::Eval);
        for &v in y.data() {
            prop_assert!(x.contains(&v));
        }
    }

    /// Installing and clearing a multiplier is an exact round trip.
    #[test]
    fn multiplier_swap_round_trips(seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut conv = Conv2d::new(1, 2, 3, 1, 0, &mut rng);
        let x = Tensor::rand_uniform(&[1, 1, 5, 5], 0.0, 1.0, &mut rng);
        let (before, _) = conv.forward(&x, Mode::Eval);
        conv.set_multiplier(Some(da_arith::MultiplierKind::AxFpm.build()));
        let (approx, _) = conv.forward(&x, Mode::Eval);
        conv.set_multiplier(None);
        let (after, _) = conv.forward(&x, Mode::Eval);
        prop_assert_eq!(&before, &after);
        // With positive inputs the approximate conv must differ.
        prop_assert_ne!(&before, &approx);
    }

    /// Dense layers are linear: f(ax) = a f(x) when bias is zero.
    #[test]
    fn dense_is_linear_without_bias(
        x in proptest::collection::vec(-2.0f32..2.0, 4),
        scale in 0.1f32..3.0,
        seed in 0u64..100,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let fc = Dense::new(4, 3, &mut rng); // bias initialized to zero
        let t = Tensor::from_vec(x, &[1, 4]);
        let scaled = t.map(|v| v * scale);
        let (y1, _) = fc.forward(&t, Mode::Eval);
        let (y2, _) = fc.forward(&scaled, Mode::Eval);
        for (a, b) in y1.data().iter().zip(y2.data()) {
            prop_assert!((a * scale - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }
}
