//! Bit-exactness property tests for the serving engine.
//!
//! The contract under test: [`InferencePlan::predict_batch`] equals the
//! per-layer `Network::forward(Mode::Eval)` **to the last ULP** for every
//! [`MultiplierKind`] (and the native no-multiplier path), over random and
//! adversarial (NaN/Inf/denormal/negative-zero/extreme) inputs, across
//! architectures covering every compiled layer kind — and that repeated
//! calls reuse the workspace arena instead of allocating.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use da_arith::MultiplierKind;
use da_nn::engine::InferencePlan;
use da_nn::layers::{BatchNorm, Conv2d, Dense, Dropout, Flatten, MaxPool2d, QuantAct, Relu};
use da_nn::zoo::{dq_convnet, lenet5, DqMode};
use da_nn::{Mode, Network};
use da_tensor::Tensor;

/// Adversarial values: specials, signed zeros, denormals, and extremes.
const SPECIALS: [f32; 10] = [
    f32::NAN,
    f32::INFINITY,
    f32::NEG_INFINITY,
    0.0,
    -0.0,
    f32::MIN_POSITIVE,
    1e-40, // denormal
    f32::MAX,
    -f32::MAX,
    1.0,
];

/// A tensor mixing uniform values with adversarial specials.
fn adversarial_tensor(shape: &[usize], rng: &mut rand::rngs::StdRng, special_rate: f64) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n)
        .map(|_| {
            if rng.gen_bool(special_rate) {
                SPECIALS[rng.gen_range(0..SPECIALS.len())]
            } else {
                rng.gen_range(-2.0f32..2.0)
            }
        })
        .collect();
    Tensor::from_vec(data, shape)
}

/// Assert plan output equals the per-layer eval forward bit for bit, for the
/// installed multiplier.
fn assert_plan_matches_forward(net: &Network, x: &Tensor, ctx: &str) {
    let want = net.forward(x, Mode::Eval).0;
    let plan = InferencePlan::compile(net, net.multiplier().cloned())
        .expect("built-in layers must compile");
    let got = plan.predict_batch(x);
    assert_eq!(got.shape(), want.shape(), "{ctx}: shape");
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{ctx}: element {i} differs: {g:?} ({:#010x}) vs {w:?} ({:#010x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// Every multiplier kind plus the native (no-multiplier) path.
fn all_configs() -> Vec<Option<MultiplierKind>> {
    let mut v: Vec<Option<MultiplierKind>> = MultiplierKind::ALL.into_iter().map(Some).collect();
    v.push(None);
    v
}

/// A small CNN exercising conv (padded and unpadded), pooling, fused and
/// standalone ReLU placements, dropout, and two dense layers.
fn small_cnn(rng: &mut rand::rngs::StdRng) -> Network {
    Network::new("engine-prop-cnn")
        .push(Conv2d::new(2, 4, 3, 1, 1, rng))
        .push(Relu)
        .push(MaxPool2d::new(2, 2))
        .push(Conv2d::new(4, 3, 3, 2, 0, rng))
        .push(Relu)
        .push(Dropout::new(0.3))
        .push(Flatten)
        .push(Dense::new(3 * 2 * 2, 8, rng))
        .push(Relu)
        .push(Dense::new(8, 4, rng))
}

/// An MLP with batch norm and activation quantization (warmed-up running
/// statistics), covering the remaining compiled layer kinds.
fn quantized_mlp(rng: &mut rand::rngs::StdRng) -> Network {
    let net = Network::new("engine-prop-mlp")
        .push(Flatten)
        .push(Dense::new(12, 10, rng).with_weight_bits(4))
        .push(BatchNorm::new(10))
        .push(Relu)
        .push(QuantAct::new(4))
        .push(Dense::new(10, 3, rng));
    // Warm the running statistics so eval-mode batch norm is nontrivial.
    let warm = Tensor::randn(&[16, 1, 3, 4], 1.0, rng);
    for _ in 0..3 {
        let _ = net.forward(&warm, Mode::Train { seed: 7 });
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The plan matches the per-layer forward bitwise for every multiplier
    /// kind on a CNN fed adversarial inputs.
    #[test]
    fn plan_matches_forward_on_adversarial_cnn_inputs(seed in any::<u64>(), n in 1usize..4) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = small_cnn(&mut rng);
        let x = adversarial_tensor(&[n, 2, 10, 10], &mut rng, 0.15);
        for kind in all_configs() {
            net.set_multiplier(kind.map(|k| k.build()));
            assert_plan_matches_forward(&net, &x, &format!("cnn {kind:?} n={n}"));
        }
    }

    /// Batch-norm + quantized layers match bitwise too (weight quantization
    /// is snapshotted at compile time).
    #[test]
    fn plan_matches_forward_on_quantized_mlp(seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = quantized_mlp(&mut rng);
        let x = adversarial_tensor(&[3, 1, 3, 4], &mut rng, 0.2);
        for kind in all_configs() {
            net.set_multiplier(kind.map(|k| k.build()));
            assert_plan_matches_forward(&net, &x, &format!("mlp {kind:?}"));
        }
    }
}

/// The paper's LeNet-5 at its native input size, batched past the engine's
/// parallel threshold: per-worker kernels and workspaces stay bit-exact.
#[test]
fn parallel_lenet_plan_is_bit_exact() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut net = lenet5(10, &mut rng);
    let x = adversarial_tensor(&[6, 1, 28, 28], &mut rng, 0.05);
    for kind in [None, Some(MultiplierKind::AxFpm), Some(MultiplierKind::Bfloat16)] {
        net.set_multiplier(kind.map(|k| k.build()));
        assert_plan_matches_forward(&net, &x, &format!("lenet {kind:?}"));
    }
}

/// The DQ ConvNet (batch norm + full quantization, Appendix B) compiles and
/// matches bitwise.
#[test]
fn dq_convnet_plan_is_bit_exact() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let net = dq_convnet(10, DqMode::Full, 4, &mut rng);
    let x = Tensor::rand_uniform(&[2, 3, 32, 32], 0.0, 1.0, &mut rng);
    assert_plan_matches_forward(&net, &x, "dq-full");
}

/// Steady-state serving reuses the workspace arena: after the first call at
/// a given shape, repeated `predict_batch` calls perform no buffer
/// allocations (the debug allocation counter stops growing).
#[test]
fn repeated_predictions_reuse_workspaces() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let mut net = small_cnn(&mut rng);
    let x = Tensor::randn(&[4, 2, 10, 10], 1.0, &mut rng);
    for kind in [None, Some(MultiplierKind::AxFpm)] {
        net.set_multiplier(kind.map(|k| k.build()));
        let plan = InferencePlan::compile(&net, net.multiplier().cloned()).expect("compilable");
        let first = plan.predict_batch(&x);
        let after_warmup = plan.workspace_allocations();
        assert!(after_warmup > 0, "{kind:?}: first call must size the arena");
        for _ in 0..8 {
            assert_eq!(plan.predict_batch(&x), first, "{kind:?}: results must be stable");
        }
        assert_eq!(
            plan.workspace_allocations(),
            after_warmup,
            "{kind:?}: steady-state serving must not grow workspace buffers"
        );
    }
}

/// `Network::logits` rides the cached plan and stays coherent through
/// multiplier swaps and weight mutation (cache invalidation).
#[test]
fn network_logits_cache_invalidates_on_mutation() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(14);
    let mut net = small_cnn(&mut rng);
    let x = Tensor::rand_uniform(&[2, 2, 10, 10], 0.0, 1.0, &mut rng);

    let exact = net.logits(&x);
    assert_eq!(exact, net.forward(&x, Mode::Eval).0, "plan path equals reference");

    net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
    let approx = net.logits(&x);
    assert_ne!(exact, approx, "multiplier swap must recompile the plan");
    assert_eq!(approx, net.forward(&x, Mode::Eval).0);

    net.set_multiplier(None);
    assert_eq!(net.logits(&x), exact, "clearing the multiplier restores exact logits");

    // Mutating weights through params_mut must invalidate the cached plan.
    net.params_mut()[0].data_mut()[0] += 1.0;
    assert_eq!(net.logits(&x), net.forward(&x, Mode::Eval).0, "weight edits recompile");
}
