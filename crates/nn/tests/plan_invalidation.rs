//! Plan-cache invalidation edges, exercised against live serving state.
//!
//! `Network` caches a compiled [`InferencePlan`] and invalidates it on
//! `set_multiplier`, `params_mut`, and training-mode forwards. A
//! [`BatchServer`] holds *replicas* compiled from the same network; those
//! snapshots intentionally do not follow later mutations, and
//! [`BatchServer::is_stale`] (backed by [`Network::plan_epoch`]) is how the
//! divergence is detected. Each test here drives one invalidation edge
//! while a server is live and asserts all three observable facts: the
//! network recompiles, the server keeps serving the old snapshot
//! bit-identically, and staleness is reported.

use std::sync::Arc;
use std::time::Duration;

use da_arith::MultiplierKind;
use da_nn::layers::{BatchNorm, Conv2d, Dense, Flatten, MaxPool2d, Relu};
use da_nn::serve::{BatchServer, ServeConfig};
use da_nn::{Mode, Network};
use da_tensor::Tensor;
use rand::SeedableRng;

fn tiny_cnn(seed: u64) -> Network {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Network::new("invalidation-cnn")
        .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
        .push(Relu)
        .push(MaxPool2d::new(2, 2))
        .push(Flatten)
        .push(Dense::new(3 * 4 * 4, 5, &mut rng))
}

fn bn_cnn(seed: u64) -> Network {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Network::new("invalidation-bn")
        .push(Conv2d::new(1, 2, 3, 1, 1, &mut rng))
        .push(BatchNorm::new(2))
        .push(Relu)
        .push(Flatten)
        .push(Dense::new(2 * 8 * 8, 4, &mut rng))
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        workers: 1,
        max_batch: 4,
        flush_deadline: Duration::ZERO,
        queue_capacity: 8,
        ..ServeConfig::default()
    }
}

fn sample(seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(&[1, 1, 8, 8], 0.0, 1.0, &mut rng)
}

/// Bit equality of two logits tensors.
fn bits_eq(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape() && a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn set_multiplier_invalidates_a_live_plan_and_strands_server_replicas() {
    let mut net = tiny_cnn(1);
    let x = sample(2);
    let plan_before = net.plan().expect("compiles");
    let exact_logits = net.logits(&x);
    let server = BatchServer::compile(&net, serve_cfg()).expect("compiles");
    assert!(!server.is_stale(&net), "fresh server must not be stale");

    net.set_multiplier(Some(MultiplierKind::AxFpm.build()));

    // The network recompiled: new plan object, new (approximate) logits.
    let plan_after = net.plan().expect("still compiles");
    assert!(!Arc::ptr_eq(&plan_before, &plan_after), "plan cache must recompile");
    let approx_logits = net.logits(&x);
    assert!(!bits_eq(&exact_logits, &approx_logits), "multiplier swap must change logits");

    // The server still serves the exact snapshot, bit for bit — and says so.
    assert!(server.is_stale(&net), "multiplier swap must flag the server stale");
    let served = server.logits(&x.batch_item(0)).expect("stale server keeps serving");
    assert_eq!(served.data(), exact_logits.data(), "snapshot must not drift");

    // Rebuilding resolves the staleness and serves the new datapath.
    let rebuilt = BatchServer::compile(&net, serve_cfg()).expect("compiles");
    assert!(!rebuilt.is_stale(&net));
    let reserved = rebuilt.logits(&x.batch_item(0)).expect("serving");
    assert_eq!(reserved.data(), approx_logits.data());
}

#[test]
fn params_mut_invalidates_a_live_plan_and_strands_server_replicas() {
    let mut net = tiny_cnn(3);
    let x = sample(4);
    let before = net.logits(&x);
    let plan_before = net.plan().expect("compiles");
    let server = BatchServer::compile(&net, serve_cfg()).expect("compiles");
    let epoch_before = net.plan_epoch();

    // Touch one weight through the mutable-params API (what optimizers use).
    {
        let mut params = net.params_mut();
        params[0].data_mut()[0] += 1.0;
    }

    assert!(net.plan_epoch() > epoch_before, "params_mut must bump the epoch");
    assert!(server.is_stale(&net), "weight mutation must flag the server stale");
    let plan_after = net.plan().expect("compiles");
    assert!(!Arc::ptr_eq(&plan_before, &plan_after), "plan cache must recompile");
    let after = net.logits(&x);
    assert!(!bits_eq(&before, &after), "weight mutation must change logits");

    // Server replicas still carry the compile-time weights.
    let served = server.logits(&x.batch_item(0)).expect("serving");
    assert_eq!(served.data(), before.data(), "server must serve the old weights");
}

#[test]
fn training_forward_invalidates_a_live_plan_via_running_statistics() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let net = bn_cnn(5);
    let x = Tensor::rand_uniform(&[4, 1, 8, 8], 0.0, 1.0, &mut rng);
    let eval_before = net.logits(&x);
    let plan_before = net.plan().expect("compiles");
    let server = BatchServer::compile(&net, serve_cfg()).expect("compiles");
    let epoch_before = net.plan_epoch();

    // A training-mode forward updates batch-norm running statistics, which
    // compiled plans snapshot — it must invalidate even without `&mut`.
    let _ = net.forward(&x, Mode::Train { seed: 7 });

    assert!(net.plan_epoch() > epoch_before, "training forward must bump the epoch");
    assert!(server.is_stale(&net), "running-stat update must flag the server stale");
    let plan_after = net.plan().expect("compiles");
    assert!(!Arc::ptr_eq(&plan_before, &plan_after), "plan cache must recompile");
    let eval_after = net.logits(&x);
    assert!(
        !bits_eq(&eval_before, &eval_after),
        "updated running statistics must change eval logits"
    );

    // The server still serves the pre-training statistics.
    let served = server.logits(&x.batch_item(0)).expect("serving");
    let want = &eval_before.data()[..eval_before.shape()[1]];
    assert_eq!(served.data(), want, "server must serve the snapshot statistics");
}

#[test]
fn plan_epoch_is_monotonic_across_all_invalidation_edges() {
    let mut net = tiny_cnn(11);
    let mut last = net.plan_epoch();
    let bumped = |net: &Network, tag: &str, last: &mut u64| {
        let now = net.plan_epoch();
        assert!(now > *last, "{tag} must bump the plan epoch ({now} vs {last})");
        *last = now;
    };

    net.set_multiplier(Some(MultiplierKind::Bfloat16.build()));
    bumped(&net, "set_multiplier(Some)", &mut last);
    net.set_multiplier(None);
    bumped(&net, "set_multiplier(None)", &mut last);
    let _ = net.params_mut();
    bumped(&net, "params_mut", &mut last);
    let x = sample(12);
    let _ = net.forward(&x, Mode::Train { seed: 1 });
    bumped(&net, "training forward", &mut last);

    // Read-only serving does NOT bump the epoch.
    let _ = net.logits(&x);
    let _ = net.plan();
    let _ = net.forward(&x, Mode::Eval);
    assert_eq!(net.plan_epoch(), last, "read paths must not invalidate");
}

#[test]
fn eval_forward_keeps_server_fresh() {
    let net = tiny_cnn(13);
    let server = BatchServer::compile(&net, serve_cfg()).expect("compiles");
    let x = sample(14);
    let _ = net.forward(&x, Mode::Eval);
    let _ = net.logits(&x);
    assert!(!server.is_stale(&net), "eval-mode inference must not flag staleness");
}
