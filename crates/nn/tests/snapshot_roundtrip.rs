//! Snapshot round-trip and hostile-file tests (`da_nn::snapshot`).
//!
//! The contract under test:
//!
//! * **Bit-identity** — serving from a loaded snapshot equals serving from
//!   the plan that was saved, to the last ULP, for every
//!   [`MultiplierKind`] (plus native) × every plan precision, including
//!   NaN/Inf payloads.
//! * **Structure survives** — precision, int4 layer mix, and product-table
//!   sharing are preserved through the round trip.
//! * **Hostile files fail typed** — truncation, bit flips, wrong magic,
//!   wrong version, and misaligned sections all surface as the right
//!   [`SnapshotError`] variant; nothing panics and no corrupt plan is ever
//!   handed to a serving worker.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use da_arith::MultiplierKind;
use da_nn::engine::InferencePlan;
use da_nn::layers::{Conv2d, Dense, Dropout, Flatten, MaxPool2d, Relu};
use da_nn::serve::{BatchServer, ServeConfig};
use da_nn::snapshot::{file_checksum, PlanCache, SnapshotError, MAGIC, VERSION};
use da_nn::Network;
use da_tensor::Tensor;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// A fresh snapshot path under the system temp dir, unique per process and
/// per call site tag (tests run concurrently in one binary).
fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("da-snap-{}-{tag}.daplan", std::process::id()))
}

fn tiny_cnn(seed: u64) -> Network {
    let mut r = rng(seed);
    Network::new("snap-tiny")
        .push(Conv2d::new(1, 4, 3, 1, 1, &mut r))
        .push(Relu)
        .push(MaxPool2d::new(2, 2))
        .push(Conv2d::new(4, 6, 3, 1, 0, &mut r))
        .push(Relu)
        .push(Dropout::new(0.5))
        .push(Flatten)
        .push(Dense::new(6 * 3 * 3, 8, &mut r))
        .push(Relu)
        .push(Dense::new(8, 5, &mut r))
}

fn assert_bit_equal(got: &Tensor, want: &Tensor, ctx: &str) {
    assert_eq!(got.shape(), want.shape(), "{ctx}: shape");
    for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: elem {i}: {x:?} vs {y:?}");
    }
}

/// Inputs that exercise the slow paths too: a clean batch plus a batch
/// carrying NaN, the infinities, negative zero, and a denormal.
fn probe_batches(r: &mut rand::rngs::StdRng) -> Vec<Tensor> {
    let clean = Tensor::rand_uniform(&[3, 1, 10, 10], 0.0, 1.0, r);
    let mut hostile = Tensor::rand_uniform(&[2, 1, 10, 10], -1.0, 1.0, r);
    let d = hostile.data_mut();
    d[0] = f32::NAN;
    d[1] = f32::INFINITY;
    d[2] = f32::NEG_INFINITY;
    d[3] = -0.0;
    d[4] = f32::from_bits(1); // smallest positive denormal
    vec![clean, hostile]
}

/// Save → load → predict is bit-identical to the in-memory plan for every
/// multiplier kind (plus native) × every precision, NaN/Inf inputs
/// included, and precision/int4-mix/LUT-sharing survive the round trip.
#[test]
fn roundtrip_is_bit_identical_for_every_kind_and_precision() {
    let mut r = rng(7);
    let calibration = Tensor::rand_uniform(&[8, 1, 10, 10], 0.0, 1.0, &mut r);
    let batches = probe_batches(&mut r);
    for kind in MultiplierKind::ALL.into_iter().map(Some).chain([None]) {
        let mut net = tiny_cnn(13);
        let mult = kind.map(|k| k.build());
        net.set_multiplier(mult.clone());
        let plans = [
            InferencePlan::compile(&net, mult.clone()).expect("f32 plan"),
            InferencePlan::compile_quantized(&net, mult.clone(), &calibration).expect("int8 plan"),
            InferencePlan::compile_quantized_int4(&net, mult.clone(), &calibration)
                .expect("int4 plan"),
        ];
        for plan in plans {
            let ctx = format!("{kind:?}/{:?}", plan.precision());
            let path = temp_path(&format!("rt-{}", ctx.replace(['/', '(', ')'], "-")));
            plan.save(&path).expect("save");
            let loaded = InferencePlan::load(&path).expect("load");
            assert_eq!(loaded.precision(), plan.precision(), "{ctx}: precision");
            assert_eq!(loaded.int4_layer_mix(), plan.int4_layer_mix(), "{ctx}: int4 mix");
            assert_eq!(
                loaded.product_lut_sharing(),
                plan.product_lut_sharing(),
                "{ctx}: LUT sharing"
            );
            for (b, x) in batches.iter().enumerate() {
                assert_bit_equal(
                    &loaded.predict_batch(x),
                    &plan.predict_batch(x),
                    &format!("{ctx}: batch {b}"),
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }
}

/// Serving through [`BatchServer::from_snapshot`] equals a serial
/// `predict_batch` on the in-memory plan, bitwise.
#[test]
fn served_snapshot_matches_serial_plan() {
    let mut net = tiny_cnn(23);
    net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
    let mut r = rng(24);
    let calibration = Tensor::rand_uniform(&[8, 1, 10, 10], 0.0, 1.0, &mut r);
    let plan = InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &calibration)
        .expect("int8 plan");
    let path = temp_path("serve");
    plan.save(&path).expect("save");

    let x = Tensor::rand_uniform(&[6, 1, 10, 10], 0.0, 1.0, &mut r);
    let want = plan.predict_batch(&x);

    let server = BatchServer::from_snapshot(
        &path,
        ServeConfig {
            workers: 3,
            max_batch: 4,
            flush_deadline: Duration::from_millis(2),
            queue_capacity: 16,
            ..ServeConfig::default()
        },
    )
    .expect("snapshot serves");
    let pending: Vec<_> =
        (0..6).map(|i| server.submit(&x.batch_item(i)).expect("accepting")).collect();
    for (i, p) in pending.into_iter().enumerate() {
        let row = p.wait().expect("served");
        for (j, (g, w)) in row.data().iter().zip(&want.data()[i * 5..(i + 1) * 5]).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "item {i} elem {j}");
        }
    }
    server.shutdown();

    // A snapshot-origin server has no source network: always stale.
    let server = BatchServer::from_plan(Arc::new(plan), ServeConfig::default());
    assert!(server.is_stale(&net));
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// [`PlanCache`]: store/load round trip, hits skip the compiler, and keys
/// that could escape the directory are rejected.
#[test]
fn plan_cache_round_trips_and_validates_keys() {
    let dir = std::env::temp_dir().join(format!("da-snap-cache-{}", std::process::id()));
    let cache = PlanCache::new(&dir).expect("cache dir");

    let mut net = tiny_cnn(33);
    net.set_multiplier(Some(MultiplierKind::Bfloat16.build()));
    let mut r = rng(34);
    let calibration = Tensor::rand_uniform(&[4, 1, 10, 10], 0.0, 1.0, &mut r);
    let x = Tensor::rand_uniform(&[2, 1, 10, 10], 0.0, 1.0, &mut r);

    assert!(!cache.contains("bfloat16-int8"));
    let mut compiles = 0;
    let plan = cache
        .get_or_insert_with("bfloat16-int8", || {
            compiles += 1;
            InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &calibration)
        })
        .expect("compile + store");
    assert_eq!(compiles, 1);
    assert!(cache.contains("bfloat16-int8"));
    assert_eq!(cache.keys(), vec!["bfloat16-int8".to_string()]);

    // Hit path: the closure must not run again, and the mapped plan serves
    // bit-identically.
    let hit = cache
        .get_or_insert_with("bfloat16-int8", || panic!("cache hit must not compile"))
        .expect("load");
    assert_bit_equal(&hit.predict_batch(&x), &plan.predict_batch(&x), "cache hit");

    for bad in ["../escape", "a/b", "", "nul\0byte", "dir\\key"] {
        assert!(
            matches!(cache.store(bad, &plan), Err(SnapshotError::BadKey(_))),
            "key {bad:?} must be rejected"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Build one valid snapshot image to mutate in the hostile-file tests.
fn valid_image() -> Vec<u8> {
    let mut net = tiny_cnn(43);
    net.set_multiplier(Some(MultiplierKind::Heap.build()));
    let mut r = rng(44);
    let calibration = Tensor::rand_uniform(&[4, 1, 10, 10], 0.0, 1.0, &mut r);
    let plan = InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &calibration)
        .expect("int8 plan");
    let path = temp_path("hostile-src");
    plan.save(&path).expect("save");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    bytes
}

fn load_bytes(tag: &str, bytes: &[u8]) -> Result<InferencePlan, SnapshotError> {
    let path = temp_path(tag);
    std::fs::write(&path, bytes).expect("write hostile file");
    let out = InferencePlan::load(&path);
    std::fs::remove_file(&path).ok();
    out
}

/// Re-seal a mutated image so it passes the checksum gate and the *next*
/// validation layer is the one under test.
fn reseal(bytes: &mut [u8]) {
    let sum = file_checksum(bytes);
    bytes[24..32].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn hostile_files_fail_with_typed_errors() {
    let image = valid_image();
    assert!(load_bytes("hostile-ok", &image).is_ok(), "pristine image must load");

    // Truncations at several depths: inside the header, inside the section
    // table, and inside a payload. All must be Truncated, never a panic.
    for (i, cut) in [8usize, 40, 64 + 8, image.len() / 2, image.len() - 1].into_iter().enumerate() {
        let truncated = &image[..cut];
        assert!(
            matches!(
                load_bytes(&format!("hostile-trunc-{i}"), truncated),
                Err(SnapshotError::Truncated)
            ),
            "truncation at {cut} must be Truncated"
        );
    }

    // A single bit flip anywhere in the body fails the checksum.
    let mut flipped = image.clone();
    let at = flipped.len() - 5;
    flipped[at] ^= 0x10;
    assert!(matches!(load_bytes("hostile-flip", &flipped), Err(SnapshotError::ChecksumMismatch)));

    // Wrong magic.
    let mut bad_magic = image.clone();
    bad_magic[0..8].copy_from_slice(b"NOTASNAP");
    assert!(matches!(load_bytes("hostile-magic", &bad_magic), Err(SnapshotError::BadMagic)));
    assert_eq!(&image[0..8], &MAGIC);

    // Wrong (future) version, re-sealed so only the version check fires.
    let mut bad_version = image.clone();
    bad_version[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
    reseal(&mut bad_version);
    assert!(matches!(
        load_bytes("hostile-version", &bad_version),
        Err(SnapshotError::UnsupportedVersion(v)) if v == VERSION + 1
    ));

    // Misaligned section offset (valid checksum): knock section 1 off the
    // 64-byte grid.
    let mut misaligned = image.clone();
    let entry = 64 + 16; // section 1's table entry
    let off = u64::from_le_bytes(misaligned[entry..entry + 8].try_into().unwrap());
    misaligned[entry..entry + 8].copy_from_slice(&(off + 4).to_le_bytes());
    let sec_len = u64::from_le_bytes(misaligned[entry + 8..entry + 16].try_into().unwrap());
    misaligned[entry + 8..entry + 16].copy_from_slice(&sec_len.saturating_sub(4).to_le_bytes());
    reseal(&mut misaligned);
    assert!(matches!(load_bytes("hostile-align", &misaligned), Err(SnapshotError::Misaligned)));

    // A section pointing past EOF (valid checksum) is Truncated.
    let mut oob = image.clone();
    let len_at = entry + 8;
    oob[len_at..len_at + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    reseal(&mut oob);
    assert!(matches!(load_bytes("hostile-oob", &oob), Err(SnapshotError::Truncated)));

    // The file_len field must match the real length even when re-sealed.
    let mut padded = image.clone();
    padded.extend_from_slice(&[0u8; 64]);
    reseal(&mut padded);
    assert!(matches!(load_bytes("hostile-pad", &padded), Err(SnapshotError::Truncated)));

    // Not a snapshot at all.
    assert!(matches!(load_bytes("hostile-tiny", b"hi"), Err(SnapshotError::Truncated)));
    assert!(matches!(load_bytes("hostile-text", &[0x55u8; 4096]), Err(SnapshotError::BadMagic)));

    // Missing file is Io, not a panic.
    assert!(matches!(InferencePlan::load(temp_path("hostile-missing")), Err(SnapshotError::Io(_))));
}

/// A minimal hand-built container: header, a one-entry section table, and
/// a caller-supplied META payload — the scaffolding for forging hostile
/// *semantic* fields (counts, registry sizes) behind a valid checksum.
fn forged_container(meta: &[u8]) -> Vec<u8> {
    let meta_off = 128; // align_up(HEADER_LEN + one 16-byte entry, 64)
    let mut out = vec![0u8; meta_off + meta.len()];
    out[0..8].copy_from_slice(&MAGIC);
    out[8..12].copy_from_slice(&VERSION.to_le_bytes());
    out[12..16].copy_from_slice(&1u32.to_le_bytes()); // section count
    let file_len = out.len() as u64;
    out[16..24].copy_from_slice(&file_len.to_le_bytes());
    out[64..72].copy_from_slice(&(meta_off as u64).to_le_bytes());
    out[72..80].copy_from_slice(&(meta.len() as u64).to_le_bytes());
    out[meta_off..].copy_from_slice(meta);
    let sum = file_checksum(&out);
    out[24..32].copy_from_slice(&sum.to_le_bytes());
    out
}

#[test]
fn hostile_counts_are_rejected_before_allocation() {
    // Section count claiming more table entries than the file has bytes:
    // rejected by arithmetic on the real file length, before the section
    // vector is reserved.
    let image = valid_image();
    let mut huge_count = image.clone();
    huge_count[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal(&mut huge_count);
    assert!(matches!(load_bytes("hostile-count-huge", &huge_count), Err(SnapshotError::Truncated)));

    // Zero sections: no META, nothing to decode.
    let mut no_sections = image.clone();
    no_sections[12..16].copy_from_slice(&0u32.to_le_bytes());
    reseal(&mut no_sections);
    assert!(matches!(
        load_bytes("hostile-count-zero", &no_sections),
        Err(SnapshotError::Truncated)
    ));

    // An int8 LUT registry claiming u32::MAX entries inside a 13-byte
    // META: the count exceeds both the section table and what the meta
    // bytes could encode — Corrupt, with no per-entry work done.
    let mut meta = Vec::new();
    meta.extend_from_slice(&0u32.to_le_bytes()); // multiplier name: ""
    meta.push(1); // precision: int8
    meta.extend_from_slice(&u32::MAX.to_le_bytes()); // n8
    meta.extend_from_slice(&[0u8; 4]); // padding the count pretends to index
    assert!(matches!(
        load_bytes("hostile-lut-count", &forged_container(&meta)),
        Err(SnapshotError::Corrupt(_))
    ));

    // A step list claiming u32::MAX steps when the meta has no bytes left:
    // the count is checked against the unread remainder before the step
    // vector is reserved.
    let mut meta = Vec::new();
    meta.extend_from_slice(&0u32.to_le_bytes()); // multiplier name: ""
    meta.push(1); // precision: int8
    meta.extend_from_slice(&0u32.to_le_bytes()); // n8 = 0
    meta.extend_from_slice(&0u32.to_le_bytes()); // n4 = 0
    meta.extend_from_slice(&u32::MAX.to_le_bytes()); // n_steps
    assert!(matches!(
        load_bytes("hostile-step-count", &forged_container(&meta)),
        Err(SnapshotError::Corrupt(_))
    ));

    // A tensor count inside the meta stream (conv bias f32 list) claiming
    // more floats than the section holds: bounded by the meta length, not
    // the claim.
    let mut meta = Vec::new();
    meta.extend_from_slice(&0u32.to_le_bytes()); // multiplier name: ""
    meta.push(0); // precision: f32
    meta.extend_from_slice(&0u32.to_le_bytes()); // n8 = 0
    meta.extend_from_slice(&0u32.to_le_bytes()); // n4 = 0
    meta.extend_from_slice(&1u32.to_le_bytes()); // n_steps = 1
    meta.push(1); // TAG_CONV
    meta.extend_from_slice(&1u32.to_le_bytes()); // weight section index
    meta.extend_from_slice(&u32::MAX.to_le_bytes()); // bias float count
    assert!(matches!(
        load_bytes("hostile-f32s-count", &forged_container(&meta)),
        Err(SnapshotError::Corrupt(_))
    ));

    // A section offset aimed at the header (aligned, in bounds, valid
    // checksum): decoding reads header bytes as META and must fail typed,
    // never panic or load.
    let mut overlap = image;
    overlap[64..72].copy_from_slice(&0u64.to_le_bytes()); // META offset = 0
    overlap[72..80].copy_from_slice(&64u64.to_le_bytes());
    reseal(&mut overlap);
    assert!(load_bytes("hostile-overlap", &overlap).is_err());
}
