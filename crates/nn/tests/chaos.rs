//! Fault-injection ("chaos") suite for the self-healing serving runtime.
//!
//! Compiled only with the `failpoints` cargo feature
//! (`cargo test --features failpoints --test chaos`); without it the
//! injection sites in `da_nn` are inert no-ops and this file is empty.
//!
//! Every test here drives a *production* code path through a named
//! failpoint and asserts the runtime's self-healing contract:
//!
//! - a worker panic mid-batch kills only the requests it was carrying
//!   (typed [`ServeError::WorkerDied`], never a hang), the supervisor
//!   restarts the worker, and every surviving reply stays **bit-identical**
//!   to serial inference;
//! - a corrupt or unreadable replacement snapshot is rejected by hot
//!   reload while the old plan keeps serving, and a valid replacement
//!   lands atomically with a generation bump;
//! - deadlines shed stalled requests instead of stranding their callers;
//! - a stalled worker inflates the service-time EWMA, so overload is shed
//!   at admission (typed `Overloaded` + retry hint) instead of collapsing
//!   the queue;
//! - an interface-mismatched replacement snapshot (wrong head width) is
//!   rejected by the reload handshake while the old plan keeps serving;
//! - an `accept(2)` error storm pauses the listener (no busy spin) and
//!   service resumes after the backoff.
//!
//! The failpoint registry is process-global, so these tests serialize
//! behind one mutex and reset the registry on entry.

#![cfg(all(unix, feature = "failpoints"))]

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use da_failpoints::{Fault, Spec};
use da_nn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use da_nn::net::{Client, NetConfig, NetServer};
use da_nn::serve::{BatchServer, Pending, ServeConfig, ServeError};
use da_nn::{InferencePlan, Mode, Network, SnapshotError};
use da_tensor::Tensor;
use rand::SeedableRng;

/// Serializes the suite: the failpoint registry is shared process state.
static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    da_failpoints::reset();
    g
}

fn tiny_cnn(seed: u64) -> Network {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Network::new("chaos-cnn")
        .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
        .push(Relu)
        .push(MaxPool2d::new(2, 2))
        .push(Flatten)
        .push(Dense::new(3 * 4 * 4, 5, &mut rng))
}

fn sample(seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(&[1, 8, 8], 0.0, 1.0, &mut rng)
}

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// One worker, one-sample batches, no flush wait: dispatch order is exactly
/// submission order, so `skip(n)` targets the n+1-th request's batch.
fn serial_cfg() -> ServeConfig {
    ServeConfig {
        workers: 1,
        max_batch: 1,
        flush_deadline: Duration::ZERO,
        flush_deadline_min: Duration::ZERO,
        queue_capacity: 32,
        ..ServeConfig::default()
    }
}

#[test]
fn worker_panic_mid_batch_respawns_and_survivors_stay_bit_identical() {
    let _g = lock();
    let net = tiny_cnn(11);
    let server = BatchServer::compile(&net, serial_cfg()).expect("tiny cnn compiles");

    // Panic on exactly the 2nd dispatched batch, once.
    da_failpoints::set(
        "serve/worker_batch",
        Spec::new(Fault::Panic("chaos: worker crash".into())).skip(1).times(1),
    );

    let items: Vec<Tensor> = (0..6).map(|i| sample(100 + i)).collect();
    let pending: Vec<Pending> =
        items.iter().map(|x| server.submit(x).expect("queue has room")).collect();
    let results: Vec<Result<Tensor, ServeError>> = pending.into_iter().map(|p| p.wait()).collect();

    // Exactly the batch the panic landed on died — typed error, no hang.
    let died: Vec<usize> = results
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r, Err(ServeError::WorkerDied)))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(died, vec![1], "the 2nd dispatched request carries the crash");

    // Every survivor is bit-identical to serial inference.
    let reference = net.forward(&Tensor::stack(&items), Mode::Eval).0;
    let classes = reference.shape()[1];
    for (i, result) in results.iter().enumerate() {
        if i == 1 {
            continue;
        }
        let got = result.as_ref().expect("survivor served");
        let want = &reference.data()[i * classes..(i + 1) * classes];
        assert!(bits_eq(got.data(), want), "sample {i} diverged after the crash");
    }

    // The supervisor recovered the worker and the server still serves.
    let stats = server.stats();
    assert_eq!(stats.worker_restarts, 1, "exactly one supervised respawn");
    let after = server.logits(&sample(999)).expect("server serves after respawn");
    assert_eq!(after.len(), classes);
    assert!(da_failpoints::hits("serve/worker_batch") >= 6);
}

#[test]
fn execution_fault_fails_one_batch_without_a_restart() {
    let _g = lock();
    let net = tiny_cnn(12);
    let server = BatchServer::compile(&net, serial_cfg()).expect("tiny cnn compiles");

    da_failpoints::set(
        "serve/worker_batch",
        Spec::new(Fault::Err("chaos: injected I/O error".into())).times(1),
    );

    match server.logits(&sample(1)) {
        Err(ServeError::Execution(msg)) => assert!(msg.contains("injected"), "{msg}"),
        other => panic!("expected injected execution failure, got {other:?}"),
    }
    // The worker survived (no panic, no respawn) and keeps serving.
    server.logits(&sample(2)).expect("worker alive after failed batch");
    let stats = server.stats();
    assert_eq!(stats.worker_restarts, 0);
    assert_eq!(stats.failed_batches, 1);
}

#[test]
fn slow_batch_expires_queued_deadlines_without_stranding_callers() {
    let _g = lock();
    let net = tiny_cnn(13);
    let server = BatchServer::compile(&net, serial_cfg()).expect("tiny cnn compiles");

    // The first dispatched batch stalls for 200 ms — far past the 10 ms
    // budget the second request carries.
    da_failpoints::set(
        "serve/worker_batch",
        Spec::new(Fault::Delay(Duration::from_millis(200))).times(1),
    );

    let slow = server.submit(&sample(1)).expect("queued");
    let hurried = server
        .submit_deadline(&sample(2), Some(Instant::now() + Duration::from_millis(10)))
        .expect("queued");

    let t0 = Instant::now();
    assert_eq!(hurried.wait(), Err(ServeError::DeadlineExceeded));
    // The expiry sweep delivered the verdict while the worker was still
    // stalled — the caller never waited out the full delay chain.
    assert!(
        t0.elapsed() < Duration::from_millis(150),
        "deadline verdict should beat the stalled batch"
    );
    slow.wait().expect("the slow request itself still completes");
    assert!(server.stats().deadline_expired >= 1);
}

#[test]
fn corrupt_or_unreadable_reload_is_rejected_then_a_valid_one_lands() {
    let _g = lock();
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let path_a = dir.join(format!("chaos-a-{pid}.daplan"));
    let path_b = dir.join(format!("chaos-b-{pid}.daplan"));
    let path_bad = dir.join(format!("chaos-bad-{pid}.daplan"));

    let net_a = tiny_cnn(21);
    let net_b = tiny_cnn(22); // same shapes, different weights
    let plan_a = InferencePlan::compile(&net_a, None).expect("plan A compiles");
    let plan_b = InferencePlan::compile(&net_b, None).expect("plan B compiles");
    plan_a.save(&path_a).expect("save A");
    plan_b.save(&path_b).expect("save B");

    // A torn/corrupt replacement: plan B with bytes flipped mid-file.
    let mut bytes = std::fs::read(&path_b).expect("read B");
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 8] {
        *b ^= 0xA5;
    }
    std::fs::write(&path_bad, &bytes).expect("write corrupt");

    let server = BatchServer::from_snapshot(&path_a, serial_cfg()).expect("serve snapshot A");
    let probe = sample(5);
    let before = server.logits(&probe).expect("A serves");
    let want_a = plan_a.predict_batch(&Tensor::stack(std::slice::from_ref(&probe)));
    assert!(bits_eq(before.data(), want_a.data()));

    // 1. Corrupt replacement: rejected, generation unchanged, A serves on.
    assert!(server.reload_from_snapshot(&path_bad).is_err(), "corrupt snapshot must not load");
    assert_eq!(server.generation(), 0);
    let still_a = server.logits(&probe).expect("A still serving");
    assert!(bits_eq(still_a.data(), want_a.data()), "old plan must keep serving");

    // 2. Unreadable replacement (injected read failure): same outcome.
    da_failpoints::set("snapshot/load", Spec::new(Fault::Err("chaos: disk gone".into())).times(1));
    match server.reload_from_snapshot(&path_b) {
        Err(e) => assert!(e.to_string().contains("chaos: disk gone"), "{e}"),
        Ok(_) => panic!("injected read failure must reject the reload"),
    }
    assert_eq!(server.generation(), 0);

    // 3. Valid replacement: lands atomically with a generation bump.
    let generation = server.reload_from_snapshot(&path_b).expect("valid reload");
    assert_eq!(generation, 1);
    assert_eq!(server.stats().generation, 1);
    let after = server.logits(&probe).expect("B serves");
    let want_b = plan_b.predict_batch(&Tensor::stack(std::slice::from_ref(&probe)));
    assert!(bits_eq(after.data(), want_b.data()), "reload must swap to plan B");

    for p in [&path_a, &path_b, &path_bad] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn stalled_worker_inflates_the_service_estimate_and_sheds_instead_of_collapsing() {
    let _g = lock();
    let net = tiny_cnn(51);
    let server = BatchServer::compile(&net, serial_cfg()).expect("tiny cnn compiles");

    // One stalled batch. The service-time measurement spans the failpoint
    // site, so the 150 ms stall lands in the EWMA the admission estimate
    // runs on — the runtime *learns* it is slow from the fault itself.
    da_failpoints::set(
        "serve/worker_batch",
        Spec::new(Fault::Delay(Duration::from_millis(150))).times(1),
    );
    server.logits(&sample(1)).expect("the stalled batch still completes");
    let ewma = server.stats().ewma_service_ns;
    assert!(ewma >= 100_000_000, "the stall must inflate the estimate, got {ewma}ns");

    // Flood with budgets the inflated estimate already blows: every request
    // is shed at admission with a typed verdict and a retry hint. Nothing
    // queues toward collapse and no caller waits past its deadline.
    let t0 = Instant::now();
    for i in 0..8 {
        let deadline = Some(Instant::now() + Duration::from_millis(10));
        match server.try_submit_deadline(&sample(10 + i), deadline) {
            Err(ServeError::Overloaded { retry_after }) => {
                assert!(retry_after > Duration::ZERO, "sheds must carry a retry hint");
            }
            Err(other) => panic!("expected an admission shed, got {other:?}"),
            Ok(_) => panic!("a doomed deadline must be shed at admission"),
        }
    }
    assert!(t0.elapsed() < Duration::from_millis(100), "shed verdicts must be immediate");
    let stats = server.stats();
    assert!(stats.shed_total >= 8, "every doomed request counts as shed: {stats:?}");
    assert_eq!(stats.deadline_expired, 0, "shed at admission, never expired in queue");

    // A caller with headroom (no deadline) is still served, bit-identically.
    let x = sample(99);
    let got = server.logits(&x).expect("healthy request serves through the pressure");
    let want = net.forward(&Tensor::stack(std::slice::from_ref(&x)), Mode::Eval).0;
    assert!(bits_eq(got.data(), want.data()), "logits diverged after the shed storm");
}

#[test]
fn interface_mismatched_reload_is_rejected_while_the_old_plan_serves() {
    let _g = lock();
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let path_a = dir.join(format!("chaos-iface-a-{pid}.daplan"));
    let path_wide = dir.join(format!("chaos-iface-wide-{pid}.daplan"));

    // Same trunk, 9-class head: loads and validates fine as a snapshot, but
    // swapping it in would change the reply shape under every client.
    let net_a = tiny_cnn(61);
    let mut rng = rand::rngs::StdRng::seed_from_u64(62);
    let wide = Network::new("chaos-wide")
        .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
        .push(Relu)
        .push(MaxPool2d::new(2, 2))
        .push(Flatten)
        .push(Dense::new(3 * 4 * 4, 9, &mut rng));
    let plan_a = InferencePlan::compile(&net_a, None).expect("plan A compiles");
    plan_a.save(&path_a).expect("save A");
    let plan_wide = InferencePlan::compile(&wide, None).expect("wide plan compiles");
    plan_wide.save(&path_wide).expect("save wide");

    let server = BatchServer::from_snapshot(&path_a, serial_cfg()).expect("serve snapshot A");
    let probe = sample(9);
    let want = plan_a.predict_batch(&Tensor::stack(std::slice::from_ref(&probe)));

    match server.reload_from_snapshot(&path_wide) {
        Err(SnapshotError::Incompatible(why)) => {
            assert!(why.contains('9'), "the rejection names the offending shape: {why}");
        }
        Err(other) => panic!("expected Incompatible, got {other}"),
        Ok(g) => panic!("interface mismatch must not load (landed as generation {g})"),
    }
    assert_eq!(server.generation(), 0, "a rejected reload must not bump the generation");
    let still = server.logits(&probe).expect("old plan still serving");
    assert!(bits_eq(still.data(), want.data()), "old plan must keep serving bit-identically");

    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_wide).ok();
}

#[test]
fn accept_error_storm_backs_off_and_service_resumes() {
    let _g = lock();
    let net = tiny_cnn(31);
    let server = BatchServer::compile(&net, serial_cfg()).expect("tiny cnn compiles");
    let net_cfg = NetConfig { accept_backoff: Duration::from_millis(10), ..NetConfig::default() };
    let front = NetServer::bind(server, "127.0.0.1:0", net_cfg).expect("bind loopback");
    let (addr, handle, join) = front.spawn();

    // The next two accept wakeups fail as if fds were exhausted; each must
    // pause the listener (no busy spin) and retry after the backoff.
    da_failpoints::set("net/accept", Spec::new(Fault::Err("chaos: EMFILE".into())).times(2));

    // connect(2) succeeds immediately (the kernel backlog holds the socket)
    // but the server only services it after riding out both error rounds.
    let mut client = Client::connect(addr).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    client.ping().expect("served after the storm clears");

    let x = sample(77);
    let reply = client.infer(x.shape(), x.data()).expect("transport").expect("served");
    let reference = net.forward(&Tensor::stack(std::slice::from_ref(&x)), Mode::Eval).0;
    assert!(bits_eq(&reply.data, reference.data()), "logits diverged after accept storm");

    drop(client);
    handle.shutdown();
    let stats = join.join().expect("reactor thread").expect("reactor exit");
    assert!(stats.accept_errors >= 2, "both injected errors counted: {stats:?}");
    assert_eq!(stats.accepted, 1);
}

#[test]
fn worker_crash_behind_the_socket_front_end_is_a_typed_reply_not_a_hang() {
    let _g = lock();
    let net = tiny_cnn(41);
    let server = BatchServer::compile(&net, serial_cfg()).expect("tiny cnn compiles");
    let front =
        NetServer::bind(server, "127.0.0.1:0", NetConfig::default()).expect("bind loopback");
    let (addr, handle, join) = front.spawn();

    da_failpoints::set(
        "serve/worker_batch",
        Spec::new(Fault::Panic("chaos: crash under load".into())).skip(1).times(1),
    );

    let mut client = Client::connect(addr).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    let items: Vec<Tensor> = (0..4).map(|i| sample(500 + i)).collect();
    let ids: Vec<u64> =
        items.iter().map(|x| client.send_infer(x.shape(), x.data()).expect("send")).collect();

    let reference = net.forward(&Tensor::stack(&items), Mode::Eval).0;
    let classes = reference.shape()[1];
    let mut errors = 0usize;
    for _ in &ids {
        match client.recv_reply().expect("every request gets a reply") {
            da_nn::net::Message::InferOk { req_id, data, .. } => {
                let i = ids.iter().position(|&id| id == req_id).expect("known id");
                let want = &reference.data()[i * classes..(i + 1) * classes];
                assert!(bits_eq(&data, want), "surviving reply {req_id} diverged");
            }
            da_nn::net::Message::InferErr { code, .. } => {
                assert_eq!(code, da_nn::net::ErrCode::Execution);
                errors += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(errors, 1, "exactly the crashed batch errored");

    // The STATS frame carries the respawn count to operators.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.worker_restarts, 1);

    drop(client);
    handle.shutdown();
    join.join().expect("reactor thread").expect("reactor exit");
}
