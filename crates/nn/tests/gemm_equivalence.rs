//! Bit-exactness property tests for the batched arithmetic backend.
//!
//! The contract under test: for every [`MultiplierKind`], the tiled/batched
//! [`gemm_with`] (and the slice-level `multiply_slice`/`dot_accumulate`
//! methods) equal the seed's per-scalar reference loop **to the last ULP**,
//! over random and adversarial (NaN/Inf/denormal/negative-zero/extreme)
//! inputs, below and above the internal parallelization threshold.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use da_arith::simd::nan_stable_add;
use da_arith::{ExactMultiplier, MultiplierKind};
use da_nn::layers::{gemm_with, matmul_with_scalar};
use da_tensor::ops::matmul;
use da_tensor::Tensor;

/// Adversarial values: specials, signed zeros, denormals, and extremes.
const SPECIALS: [f32; 10] = [
    f32::NAN,
    f32::INFINITY,
    f32::NEG_INFINITY,
    0.0,
    -0.0,
    f32::MIN_POSITIVE,
    1e-40, // denormal
    f32::MAX,
    -f32::MAX,
    1.0,
];

/// A tensor mixing uniform values with adversarial specials.
fn adversarial_tensor(shape: &[usize], rng: &mut rand::rngs::StdRng, special_rate: f64) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n)
        .map(|_| {
            if rng.gen_bool(special_rate) {
                SPECIALS[rng.gen_range(0..SPECIALS.len())]
            } else {
                rng.gen_range(-4.0f32..4.0)
            }
        })
        .collect();
    Tensor::from_vec(data, shape)
}

fn assert_bit_equal(got: &Tensor, want: &Tensor, ctx: &str) {
    assert_eq!(got.shape(), want.shape(), "{ctx}: shape");
    for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{ctx}: element {i} differs: {x:?} ({:#010x}) vs {y:?} ({:#010x})",
            x.to_bits(),
            y.to_bits()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Small-shape sweep with adversarial values, every multiplier kind.
    #[test]
    fn batched_gemm_matches_scalar_on_adversarial_inputs(
        m in 1usize..5,
        k in 1usize..9,
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = adversarial_tensor(&[m, k], &mut rng, 0.25);
        let b = adversarial_tensor(&[k, n], &mut rng, 0.25);
        for kind in MultiplierKind::ALL {
            let mult = kind.build();
            let batched = gemm_with(&*mult, &a, &b);
            let reference = matmul_with_scalar(&*mult, &a, &b);
            for (i, (x, y)) in batched.data().iter().zip(reference.data()).enumerate() {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "{} {}x{}x{} elem {}: {:?} vs {:?}", kind, m, k, n, i, x, y
                );
            }
        }
    }

    /// Slice-level methods match the scalar loops elementwise, with
    /// adversarial values.
    #[test]
    fn slice_methods_match_scalar_on_adversarial_inputs(seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let len = 67usize; // not a multiple of any internal tile width
        let a = adversarial_tensor(&[len], &mut rng, 0.3);
        let b = adversarial_tensor(&[len], &mut rng, 0.3);
        for kind in MultiplierKind::ALL {
            let m = kind.build();
            let mut out = vec![0.0f32; len];
            m.multiply_slice(a.data(), b.data(), &mut out);
            for i in 0..len {
                let want = m.multiply(a.data()[i], b.data()[i]);
                prop_assert_eq!(out[i].to_bits(), want.to_bits(), "{} mul at {}", kind, i);
            }

            // The library accumulators pin NaN-payload propagation through
            // `nan_stable_add` (PR 4); the test-local loops must accumulate
            // the same way, or release-mode lowering of a plain `+=` can
            // pick the other NaN operand and fail spuriously.
            let dot = m.dot_accumulate(a.data(), b.data());
            let mut want = 0.0f32;
            for i in 0..len {
                want = nan_stable_add(want, m.multiply(a.data()[i], b.data()[i]));
            }
            prop_assert_eq!(dot.to_bits(), want.to_bits(), "{} dot", kind);

            let scale = a.data()[0];
            let mut acc = vec![0.25f32; len];
            let mut acc_want = acc.clone();
            m.axpy_slice(scale, b.data(), &mut acc);
            for (i, v) in acc_want.iter_mut().enumerate() {
                *v = nan_stable_add(*v, m.multiply(scale, b.data()[i]));
            }
            for i in 0..len {
                prop_assert_eq!(acc[i].to_bits(), acc_want[i].to_bits(), "{} axpy at {}", kind, i);
            }
        }
    }
}

/// Shapes large enough to cross the GEMM's internal parallel threshold:
/// per-worker kernels must still be bit-exact (fast-path kinds).
#[test]
fn parallel_gemm_is_bit_exact_above_threshold() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for kind in [
        MultiplierKind::Exact,
        MultiplierKind::ExactFpm,
        MultiplierKind::AxFpm,
        MultiplierKind::Bfloat16,
    ] {
        let mult = kind.build();
        // 34×32×40 = 43_520 MACs > the 2^15 parallel threshold; 40 columns
        // also exercises a ragged final column tile.
        let a = adversarial_tensor(&[34, 32], &mut rng, 0.1);
        let b = adversarial_tensor(&[32, 40], &mut rng, 0.1);
        let batched = gemm_with(&*mult, &a, &b);
        let reference = matmul_with_scalar(&*mult, &a, &b);
        assert_bit_equal(&batched, &reference, kind.as_str());
    }
}

/// HEAP runs the gate-level core through per-worker memoizing LUTs; above
/// the parallel threshold the result must still equal the (slow) scalar
/// gate-level loop exactly.
#[test]
fn parallel_memoized_heap_gemm_is_bit_exact() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let mult = MultiplierKind::Heap.build();
    // Low-entropy operands maximize memo hits; 33×32×32 = 33_792 MACs
    // crosses the parallel threshold.
    let vals: Vec<f32> = (0..13).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let pick = |rng: &mut rand::rngs::StdRng, n: usize| -> Tensor {
        Tensor::from_vec((0..n).map(|_| vals[rng.gen_range(0usize..13)]).collect(), &[n])
    };
    let a = pick(&mut rng, 33 * 32).reshape(&[33, 32]);
    let b = pick(&mut rng, 32 * 32).reshape(&[32, 32]);
    let batched = gemm_with(&*mult, &a, &b);
    let reference = matmul_with_scalar(&*mult, &a, &b);
    assert_bit_equal(&batched, &reference, "heap parallel+memo");
}

/// The monomorphized exact GEMM equals the native `da_tensor::ops::matmul`
/// bitwise on dense data (the no-virtual-call acceptance criterion).
#[test]
fn exact_gemm_equals_native_matmul_bitwise() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    for (m, k, n) in [(5usize, 6usize, 4usize), (34, 32, 40)] {
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let got = gemm_with(&ExactMultiplier, &a, &b);
        let want = matmul(&a, &b);
        assert_bit_equal(&got, &want, &format!("exact {m}x{k}x{n}"));
    }
}

/// The batched path through a layer-style `dyn` handle equals the
/// monomorphized path (dispatch style must not change results).
#[test]
fn dyn_and_monomorphized_gemm_agree() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    let a = adversarial_tensor(&[6, 9], &mut rng, 0.2);
    let b = adversarial_tensor(&[9, 5], &mut rng, 0.2);
    for kind in MultiplierKind::ALL {
        let arc = kind.build();
        let via_dyn = gemm_with(&*arc, &a, &b);
        let via_matmul_with = da_nn::layers::matmul_with(&*arc, &a, &b);
        assert_bit_equal(&via_dyn, &via_matmul_with, kind.as_str());
    }
}
