//! Client-driven failure modes of the TCP serving front end
//! (`da_nn::net`).
//!
//! The in-process suites pin the batch server's contract for cooperative
//! callers; this one pins it for the callers a network edge actually gets:
//! clients that disconnect with requests in flight, send hostile frames,
//! trickle half a header and stall, or ask for shutdown while others still
//! have work queued. Throughout, the invariant is the same as everywhere
//! else in this codebase — every reply that is delivered is bit-identical
//! to serial inference, no matter what any other connection is doing.

#![cfg(unix)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use da_nn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use da_nn::net::{Client, ErrCode, Message, NetConfig, NetServer, NetStats};
use da_nn::serve::{BatchServer, ServeConfig};
use da_nn::{Mode, Network};
use da_tensor::Tensor;
use rand::SeedableRng;

fn tiny_cnn(seed: u64) -> Network {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Network::new("net-serve-cnn")
        .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
        .push(Relu)
        .push(MaxPool2d::new(2, 2))
        .push(Flatten)
        .push(Dense::new(3 * 4 * 4, 5, &mut rng))
}

fn sample(seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(&[1, 8, 8], 0.0, 1.0, &mut rng)
}

/// Stand a front end on a fresh tiny network; returns the serial reference
/// logits for `samples` alongside the serving stack.
fn front_end(
    serve: ServeConfig,
    net_cfg: NetConfig,
) -> (
    Network,
    std::net::SocketAddr,
    da_nn::net::NetHandle,
    std::thread::JoinHandle<std::io::Result<NetStats>>,
) {
    let net = tiny_cnn(7);
    let server = BatchServer::compile(&net, serve).expect("tiny cnn compiles");
    let front = NetServer::bind(server, "127.0.0.1:0", net_cfg).expect("bind loopback");
    let (addr, handle, join) = front.spawn();
    (net, addr, handle, join)
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 4,
        flush_deadline: Duration::from_micros(200),
        queue_capacity: 32,
        ..ServeConfig::default()
    }
}

/// Serial ground truth for one sample.
fn reference(net: &Network, x: &Tensor) -> Vec<f32> {
    net.forward(&Tensor::stack(std::slice::from_ref(x)), Mode::Eval).0.data().to_vec()
}

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn finish(
    handle: da_nn::net::NetHandle,
    join: std::thread::JoinHandle<std::io::Result<NetStats>>,
) -> NetStats {
    handle.shutdown();
    join.join().expect("reactor thread").expect("reactor exit")
}

#[test]
fn served_replies_are_bit_identical_and_match_out_of_order() {
    let (net, addr, handle, join) = front_end(serve_cfg(), NetConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // Pipeline everything, then collect replies in whatever order the
    // batches complete; req_ids do the matching.
    let items: Vec<Tensor> = (0..12).map(|i| sample(100 + i)).collect();
    let ids: Vec<u64> =
        items.iter().map(|x| client.send_infer(x.shape(), x.data()).expect("send")).collect();
    let mut got: Vec<Option<Vec<f32>>> = vec![None; items.len()];
    for _ in 0..items.len() {
        match client.recv_reply().expect("reply") {
            Message::InferOk { req_id, shape, data } => {
                assert_eq!(shape, vec![5]);
                let at = ids.iter().position(|&id| id == req_id).expect("known id");
                assert!(got[at].is_none(), "duplicate reply for {req_id}");
                got[at] = Some(data);
            }
            other => panic!("expected INFER_OK, got {other:?}"),
        }
    }
    for (x, row) in items.iter().zip(&got) {
        let want = reference(&net, x);
        assert!(bits_eq(row.as_deref().expect("collected"), &want), "served logits diverged");
    }

    let (batches, served_items, _) = client.stats().expect("stats");
    assert_eq!(served_items, items.len() as u64);
    assert!(batches >= 1 && batches <= items.len() as u64);

    let stats = finish(handle, join);
    assert_eq!(stats.replies_ok, items.len() as u64);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn pipelining_past_the_inflight_cap_does_not_deadlock() {
    // A small in-flight cap and a small batch queue make both park reasons
    // (cap hit, QueueFull) fire inside one client's burst.
    let serve = ServeConfig {
        workers: 1,
        max_batch: 4,
        flush_deadline: Duration::from_micros(200),
        queue_capacity: 4,
        ..ServeConfig::default()
    };
    let net_cfg = NetConfig { max_inflight: 4, ..NetConfig::default() };
    let (net, addr, handle, join) = front_end(serve, net_cfg);
    let mut client = Client::connect(addr).expect("connect");
    // A hang (the bug) must fail the test, not wedge the suite.
    client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");

    // Burst far past the cap before reading a single byte: the reactor
    // drains the whole burst from the kernel buffer, pauses the connection,
    // and is left holding complete frames in its decoder. Those frames must
    // be resumed as replies free capacity — the client sends nothing more,
    // so no further socket readability will announce them.
    let items: Vec<Tensor> = (0..24).map(|i| sample(800 + i)).collect();
    let ids: Vec<u64> =
        items.iter().map(|x| client.send_infer(x.shape(), x.data()).expect("send")).collect();

    let mut got: Vec<Option<Vec<f32>>> = vec![None; items.len()];
    for _ in 0..items.len() {
        match client.recv_reply().expect("reply (deadlock if the decoder strands frames)") {
            Message::InferOk { req_id, shape, data } => {
                assert_eq!(shape, vec![5]);
                let at = ids.iter().position(|&id| id == req_id).expect("known id");
                assert!(got[at].is_none(), "duplicate reply for {req_id}");
                got[at] = Some(data);
            }
            other => panic!("expected INFER_OK, got {other:?}"),
        }
    }
    for (x, row) in items.iter().zip(&got) {
        let want = reference(&net, x);
        assert!(bits_eq(row.as_deref().expect("collected"), &want), "served logits diverged");
    }

    let stats = finish(handle, join);
    assert_eq!(stats.replies_ok, items.len() as u64);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn mid_request_disconnect_leaves_other_clients_unaffected() {
    let (net, addr, handle, join) = front_end(serve_cfg(), NetConfig::default());

    // Client A pipelines a burst and vanishes without reading a byte.
    {
        let mut a = Client::connect(addr).expect("connect A");
        for i in 0..8 {
            let x = sample(200 + i);
            a.send_infer(x.shape(), x.data()).expect("send");
        }
        // Dropped here: the socket closes with up to 8 replies undeliverable.
    }

    // Client B keeps querying across A's disappearance; every reply must
    // still be bit-identical to serial inference.
    let mut b = Client::connect(addr).expect("connect B");
    for i in 0..8 {
        let x = sample(300 + i);
        let (shape, data) = b.infer(x.shape(), x.data()).expect("transport").expect("served");
        assert_eq!(shape, vec![5]);
        assert!(bits_eq(&data, &reference(&net, &x)), "B's logits diverged after A's exit");
    }
    b.ping().expect("server still healthy");

    let stats = finish(handle, join);
    // A's completions were dropped, not delivered — only B's count.
    assert!(stats.replies_ok >= 8);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn oversized_frame_is_refused_before_its_body_arrives() {
    let (_net, addr, handle, join) = front_end(serve_cfg(), NetConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // A 64 MiB length prefix with no body: the reply must come back
    // immediately (nothing is buffered toward an unacceptable frame).
    client.stream().write_all(&(64u32 << 20).to_le_bytes()).expect("write prefix");
    match client.recv_reply().expect("error reply") {
        Message::InferErr { req_id, code, .. } => {
            assert_eq!(req_id, 0, "protocol errors have no request to blame");
            assert_eq!(code, ErrCode::Protocol);
        }
        other => panic!("expected INFER_ERR, got {other:?}"),
    }
    // ... and the connection is closed behind it.
    let err = client.recv_reply().expect_err("connection must be closed");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);

    let stats = finish(handle, join);
    assert_eq!(stats.protocol_errors, 1);
}

#[test]
fn reply_opcodes_from_a_client_are_protocol_errors() {
    let (_net, addr, handle, join) = front_end(serve_cfg(), NetConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    client.send(&Message::Pong).expect("send");
    match client.recv_reply().expect("error reply") {
        Message::InferErr { req_id: 0, code: ErrCode::Protocol, .. } => {}
        other => panic!("expected protocol INFER_ERR, got {other:?}"),
    }
    let err = client.recv_reply().expect_err("connection must be closed");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    let stats = finish(handle, join);
    assert_eq!(stats.protocol_errors, 1);
}

#[test]
fn execution_failure_is_reported_on_the_wire_and_the_connection_survives() {
    let (net, addr, handle, join) = front_end(serve_cfg(), NetConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // Wrong spatial size: the plan rejects it; the error must come back as
    // a typed reply, not a dropped connection.
    let bad = Tensor::zeros(&[1, 6, 6]);
    let err = client.infer(bad.shape(), bad.data()).expect("transport").expect_err("rejected");
    assert_eq!(err.0, ErrCode::Execution);

    // Same connection keeps serving, bit-identically.
    let x = sample(400);
    let (_, data) = client.infer(x.shape(), x.data()).expect("transport").expect("served");
    assert!(bits_eq(&data, &reference(&net, &x)));

    let stats = finish(handle, join);
    assert_eq!(stats.replies_err, 1);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn slow_loris_partial_header_is_reaped_by_the_idle_timeout() {
    let net_cfg =
        NetConfig { idle_timeout: Some(Duration::from_millis(100)), ..NetConfig::default() };
    let (net, addr, handle, join) = front_end(serve_cfg(), net_cfg);

    // Two bytes of length prefix, then silence.
    let mut loris = TcpStream::connect(addr).expect("connect");
    loris.write_all(&[0x10, 0x00]).expect("half a header");
    loris.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut buf = [0u8; 16];
    let n = loris.read(&mut buf).expect("server closes, not hangs");
    assert_eq!(n, 0, "expected EOF from the idle sweep");

    // A well-behaved client is untouched by the reaping.
    let mut client = Client::connect(addr).expect("connect");
    let x = sample(500);
    let (_, data) = client.infer(x.shape(), x.data()).expect("transport").expect("served");
    assert!(bits_eq(&data, &reference(&net, &x)));

    let stats = finish(handle, join);
    assert_eq!(stats.idle_closed, 1);
}

#[test]
fn shutdown_drains_inflight_requests_bit_identically() {
    // A long flush deadline with a big max_batch parks A's burst inside the
    // worker's deadline wait — genuinely in flight when the drain begins.
    let serve = ServeConfig {
        workers: 1,
        max_batch: 64,
        flush_deadline: Duration::from_millis(200),
        flush_deadline_min: Duration::from_millis(200),
        queue_capacity: 64,
    };
    let (net, addr, handle, join) = front_end(serve, NetConfig::default());

    let mut a = Client::connect(addr).expect("connect A");
    let items: Vec<Tensor> = (0..6).map(|i| sample(600 + i)).collect();
    let ids: Vec<u64> =
        items.iter().map(|x| a.send_infer(x.shape(), x.data()).expect("send")).collect();
    // Let the reactor admit the burst before the drain starts.
    std::thread::sleep(Duration::from_millis(50));

    let mut b = Client::connect(addr).expect("connect B");
    b.shutdown_server().expect("drain acknowledged");

    // A's replies still arrive — the workers stayed alive through the
    // drain — and carry exactly the logits serial inference produces.
    a.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut seen = 0;
    while seen < items.len() {
        match a.recv_reply().expect("drained reply") {
            Message::InferOk { req_id, data, .. } => {
                let at = ids.iter().position(|&id| id == req_id).expect("known id");
                assert!(
                    bits_eq(&data, &reference(&net, &items[at])),
                    "drained reply diverged from serial inference"
                );
                seen += 1;
            }
            other => panic!("expected INFER_OK during drain, got {other:?}"),
        }
    }

    let stats = join.join().expect("reactor thread").expect("reactor exit");
    assert_eq!(stats.replies_ok, items.len() as u64, "drain must deliver every reply");
    drop(handle);

    // The drained socket is closed once the last reply is flushed.
    let err = a.recv_reply().expect_err("socket closed after drain");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
}
