//! Client-driven failure modes of the TCP serving front end
//! (`da_nn::net`).
//!
//! The in-process suites pin the batch server's contract for cooperative
//! callers; this one pins it for the callers a network edge actually gets:
//! clients that disconnect with requests in flight, send hostile frames,
//! trickle half a header and stall, or ask for shutdown while others still
//! have work queued. Throughout, the invariant is the same as everywhere
//! else in this codebase — every reply that is delivered is bit-identical
//! to serial inference, no matter what any other connection is doing.

#![cfg(unix)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use da_nn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use da_nn::net::{
    Client, ErrCode, FrameDecoder, Message, NetConfig, NetServer, NetStats, DEFAULT_MAX_FRAME,
};
use da_nn::serve::{BatchServer, ServeConfig};
use da_nn::{Mode, Network};
use da_tensor::Tensor;
use rand::SeedableRng;

fn tiny_cnn(seed: u64) -> Network {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Network::new("net-serve-cnn")
        .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
        .push(Relu)
        .push(MaxPool2d::new(2, 2))
        .push(Flatten)
        .push(Dense::new(3 * 4 * 4, 5, &mut rng))
}

fn sample(seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(&[1, 8, 8], 0.0, 1.0, &mut rng)
}

/// Stand a front end on a fresh tiny network; returns the serial reference
/// logits for `samples` alongside the serving stack.
fn front_end(
    serve: ServeConfig,
    net_cfg: NetConfig,
) -> (
    Network,
    std::net::SocketAddr,
    da_nn::net::NetHandle,
    std::thread::JoinHandle<std::io::Result<NetStats>>,
) {
    let net = tiny_cnn(7);
    let server = BatchServer::compile(&net, serve).expect("tiny cnn compiles");
    let front = NetServer::bind(server, "127.0.0.1:0", net_cfg).expect("bind loopback");
    let (addr, handle, join) = front.spawn();
    (net, addr, handle, join)
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 4,
        flush_deadline: Duration::from_micros(200),
        queue_capacity: 32,
        ..ServeConfig::default()
    }
}

/// Serial ground truth for one sample.
fn reference(net: &Network, x: &Tensor) -> Vec<f32> {
    net.forward(&Tensor::stack(std::slice::from_ref(x)), Mode::Eval).0.data().to_vec()
}

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn finish(
    handle: da_nn::net::NetHandle,
    join: std::thread::JoinHandle<std::io::Result<NetStats>>,
) -> NetStats {
    handle.shutdown();
    join.join().expect("reactor thread").expect("reactor exit")
}

#[test]
fn served_replies_are_bit_identical_and_match_out_of_order() {
    let (net, addr, handle, join) = front_end(serve_cfg(), NetConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // Pipeline everything, then collect replies in whatever order the
    // batches complete; req_ids do the matching.
    let items: Vec<Tensor> = (0..12).map(|i| sample(100 + i)).collect();
    let ids: Vec<u64> =
        items.iter().map(|x| client.send_infer(x.shape(), x.data()).expect("send")).collect();
    let mut got: Vec<Option<Vec<f32>>> = vec![None; items.len()];
    for _ in 0..items.len() {
        match client.recv_reply().expect("reply") {
            Message::InferOk { req_id, shape, data, .. } => {
                assert_eq!(shape, vec![5]);
                let at = ids.iter().position(|&id| id == req_id).expect("known id");
                assert!(got[at].is_none(), "duplicate reply for {req_id}");
                got[at] = Some(data);
            }
            other => panic!("expected INFER_OK, got {other:?}"),
        }
    }
    for (x, row) in items.iter().zip(&got) {
        let want = reference(&net, x);
        assert!(bits_eq(row.as_deref().expect("collected"), &want), "served logits diverged");
    }

    let server_stats = client.stats().expect("stats");
    assert_eq!(server_stats.items, items.len() as u64);
    assert!(server_stats.batches >= 1 && server_stats.batches <= items.len() as u64);
    assert_eq!(server_stats.worker_restarts, 0);
    assert_eq!(server_stats.deadline_expired, 0);

    let stats = finish(handle, join);
    assert_eq!(stats.replies_ok, items.len() as u64);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn pipelining_past_the_inflight_cap_does_not_deadlock() {
    // A small in-flight cap and a small batch queue make both park reasons
    // (cap hit, QueueFull) fire inside one client's burst.
    let serve = ServeConfig {
        workers: 1,
        max_batch: 4,
        flush_deadline: Duration::from_micros(200),
        queue_capacity: 4,
        ..ServeConfig::default()
    };
    let net_cfg = NetConfig { max_inflight: 4, ..NetConfig::default() };
    let (net, addr, handle, join) = front_end(serve, net_cfg);
    let mut client = Client::connect(addr).expect("connect");
    // A hang (the bug) must fail the test, not wedge the suite.
    client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");

    // Burst far past the cap before reading a single byte: the reactor
    // drains the whole burst from the kernel buffer, pauses the connection,
    // and is left holding complete frames in its decoder. Those frames must
    // be resumed as replies free capacity — the client sends nothing more,
    // so no further socket readability will announce them.
    let items: Vec<Tensor> = (0..24).map(|i| sample(800 + i)).collect();
    let ids: Vec<u64> =
        items.iter().map(|x| client.send_infer(x.shape(), x.data()).expect("send")).collect();

    let mut got: Vec<Option<Vec<f32>>> = vec![None; items.len()];
    for _ in 0..items.len() {
        match client.recv_reply().expect("reply (deadlock if the decoder strands frames)") {
            Message::InferOk { req_id, shape, data, .. } => {
                assert_eq!(shape, vec![5]);
                let at = ids.iter().position(|&id| id == req_id).expect("known id");
                assert!(got[at].is_none(), "duplicate reply for {req_id}");
                got[at] = Some(data);
            }
            other => panic!("expected INFER_OK, got {other:?}"),
        }
    }
    for (x, row) in items.iter().zip(&got) {
        let want = reference(&net, x);
        assert!(bits_eq(row.as_deref().expect("collected"), &want), "served logits diverged");
    }

    let stats = finish(handle, join);
    assert_eq!(stats.replies_ok, items.len() as u64);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn mid_request_disconnect_leaves_other_clients_unaffected() {
    let (net, addr, handle, join) = front_end(serve_cfg(), NetConfig::default());

    // Client A pipelines a burst and vanishes without reading a byte.
    {
        let mut a = Client::connect(addr).expect("connect A");
        for i in 0..8 {
            let x = sample(200 + i);
            a.send_infer(x.shape(), x.data()).expect("send");
        }
        // Dropped here: the socket closes with up to 8 replies undeliverable.
    }

    // Client B keeps querying across A's disappearance; every reply must
    // still be bit-identical to serial inference.
    let mut b = Client::connect(addr).expect("connect B");
    for i in 0..8 {
        let x = sample(300 + i);
        let reply = b.infer(x.shape(), x.data()).expect("transport").expect("served");
        assert_eq!(reply.shape, vec![5]);
        assert!(bits_eq(&reply.data, &reference(&net, &x)), "B's logits diverged after A's exit");
    }
    b.ping().expect("server still healthy");

    let stats = finish(handle, join);
    // A's completions were dropped, not delivered — only B's count.
    assert!(stats.replies_ok >= 8);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn oversized_frame_is_refused_before_its_body_arrives() {
    let (_net, addr, handle, join) = front_end(serve_cfg(), NetConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // A 64 MiB length prefix with no body: the reply must come back
    // immediately (nothing is buffered toward an unacceptable frame).
    client.stream().write_all(&(64u32 << 20).to_le_bytes()).expect("write prefix");
    match client.recv_reply().expect("error reply") {
        Message::InferErr { req_id, code, .. } => {
            assert_eq!(req_id, 0, "protocol errors have no request to blame");
            assert_eq!(code, ErrCode::Protocol);
        }
        other => panic!("expected INFER_ERR, got {other:?}"),
    }
    // ... and the connection is closed behind it.
    let err = client.recv_reply().expect_err("connection must be closed");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);

    let stats = finish(handle, join);
    assert_eq!(stats.protocol_errors, 1);
}

#[test]
fn reply_opcodes_from_a_client_are_protocol_errors() {
    let (_net, addr, handle, join) = front_end(serve_cfg(), NetConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    client.send(&Message::Pong).expect("send");
    match client.recv_reply().expect("error reply") {
        Message::InferErr { req_id: 0, code: ErrCode::Protocol, .. } => {}
        other => panic!("expected protocol INFER_ERR, got {other:?}"),
    }
    let err = client.recv_reply().expect_err("connection must be closed");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    let stats = finish(handle, join);
    assert_eq!(stats.protocol_errors, 1);
}

#[test]
fn execution_failure_is_reported_on_the_wire_and_the_connection_survives() {
    let (net, addr, handle, join) = front_end(serve_cfg(), NetConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // Wrong spatial size: the plan rejects it; the error must come back as
    // a typed reply, not a dropped connection.
    let bad = Tensor::zeros(&[1, 6, 6]);
    let err = client.infer(bad.shape(), bad.data()).expect("transport").expect_err("rejected");
    assert_eq!(err.code, ErrCode::Execution);
    assert_eq!(err.retry_after, None, "execution failures carry no retry hint");

    // Same connection keeps serving, bit-identically.
    let x = sample(400);
    let reply = client.infer(x.shape(), x.data()).expect("transport").expect("served");
    assert!(bits_eq(&reply.data, &reference(&net, &x)));

    let stats = finish(handle, join);
    assert_eq!(stats.replies_err, 1);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn slow_loris_partial_header_is_reaped_by_the_idle_timeout() {
    let net_cfg =
        NetConfig { idle_timeout: Some(Duration::from_millis(100)), ..NetConfig::default() };
    let (net, addr, handle, join) = front_end(serve_cfg(), net_cfg);

    // Two bytes of length prefix, then silence.
    let mut loris = TcpStream::connect(addr).expect("connect");
    loris.write_all(&[0x10, 0x00]).expect("half a header");
    loris.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut buf = [0u8; 16];
    let n = loris.read(&mut buf).expect("server closes, not hangs");
    assert_eq!(n, 0, "expected EOF from the idle sweep");

    // A well-behaved client is untouched by the reaping.
    let mut client = Client::connect(addr).expect("connect");
    let x = sample(500);
    let reply = client.infer(x.shape(), x.data()).expect("transport").expect("served");
    assert!(bits_eq(&reply.data, &reference(&net, &x)));

    let stats = finish(handle, join);
    assert_eq!(stats.idle_closed, 1);
}

#[test]
fn shutdown_drains_inflight_requests_bit_identically() {
    // A long flush deadline with a big max_batch parks A's burst inside the
    // worker's deadline wait — genuinely in flight when the drain begins.
    let serve = ServeConfig {
        workers: 1,
        max_batch: 64,
        flush_deadline: Duration::from_millis(200),
        flush_deadline_min: Duration::from_millis(200),
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let (net, addr, handle, join) = front_end(serve, NetConfig::default());

    let mut a = Client::connect(addr).expect("connect A");
    let items: Vec<Tensor> = (0..6).map(|i| sample(600 + i)).collect();
    let ids: Vec<u64> =
        items.iter().map(|x| a.send_infer(x.shape(), x.data()).expect("send")).collect();
    // Let the reactor admit the burst before the drain starts.
    std::thread::sleep(Duration::from_millis(50));

    let mut b = Client::connect(addr).expect("connect B");
    b.shutdown_server().expect("drain acknowledged");

    // A's replies still arrive — the workers stayed alive through the
    // drain — and carry exactly the logits serial inference produces.
    a.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut seen = 0;
    while seen < items.len() {
        match a.recv_reply().expect("drained reply") {
            Message::InferOk { req_id, data, .. } => {
                let at = ids.iter().position(|&id| id == req_id).expect("known id");
                assert!(
                    bits_eq(&data, &reference(&net, &items[at])),
                    "drained reply diverged from serial inference"
                );
                seen += 1;
            }
            other => panic!("expected INFER_OK during drain, got {other:?}"),
        }
    }

    let stats = join.join().expect("reactor thread").expect("reactor exit");
    assert_eq!(stats.replies_ok, items.len() as u64, "drain must deliver every reply");
    drop(handle);

    // The drained socket is closed once the last reply is flushed.
    let err = a.recv_reply().expect_err("socket closed after drain");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
}

#[test]
fn wire_deadline_on_a_stalled_server_is_a_typed_reply_not_a_hang() {
    // Zero workers: requests queue but never execute, so only the deadline
    // machinery (admission shed + expiry sweep) can answer.
    let serve = ServeConfig { workers: 0, ..serve_cfg() };
    let (_net, addr, handle, join) = front_end(serve, NetConfig::default());

    let mut client = Client::connect(addr).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let x = sample(700);
    let id = client
        .send_infer_deadline(x.shape(), x.data(), Some(Duration::from_millis(5)))
        .expect("send");
    match client.recv_reply().expect("the sweep must answer") {
        Message::InferErr { req_id, code, .. } => {
            assert_eq!(req_id, id);
            assert_eq!(code, ErrCode::DeadlineExceeded);
        }
        other => panic!("expected DEADLINE_EXCEEDED, got {other:?}"),
    }
    let server_stats = client.stats().expect("stats");
    assert!(server_stats.deadline_expired >= 1);

    let stats = finish(handle, join);
    assert_eq!(stats.replies_err, 1);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn reload_over_the_wire_swaps_plans_without_dropping_the_connection() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let path_a = dir.join(format!("net-reload-a-{pid}.daplan"));
    let path_b = dir.join(format!("net-reload-b-{pid}.daplan"));

    let net_a = tiny_cnn(71);
    let net_b = tiny_cnn(72); // same shapes, different weights
    da_nn::InferencePlan::compile(&net_a, None).expect("plan A").save(&path_a).expect("save A");
    da_nn::InferencePlan::compile(&net_b, None).expect("plan B").save(&path_b).expect("save B");

    let server = BatchServer::from_snapshot(&path_a, serve_cfg()).expect("serve A");
    let net_cfg = NetConfig { reload_path: Some(path_a.clone()), ..NetConfig::default() };
    let front = NetServer::bind(server, "127.0.0.1:0", net_cfg).expect("bind loopback");
    let (addr, handle, join) = front.spawn();

    let mut client = Client::connect(addr).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let x = sample(701);
    let before = client.infer(x.shape(), x.data()).expect("transport").expect("served");
    assert!(bits_eq(&before.data, &reference(&net_a, &x)), "plan A serves first");

    // Explicit-path reload to plan B: same connection, new weights.
    let generation = client.reload(&path_b.display().to_string()).expect("transport");
    assert_eq!(generation, Ok(1));
    let after = client.infer(x.shape(), x.data()).expect("transport").expect("served");
    assert!(bits_eq(&after.data, &reference(&net_b, &x)), "plan B serves after reload");

    // A nonexistent replacement is rejected; B keeps serving, generation
    // unchanged.
    let rejected = client.reload("/nonexistent/plan.daplan").expect("transport");
    assert!(rejected.is_err(), "missing snapshot must be rejected");
    let still = client.infer(x.shape(), x.data()).expect("transport").expect("served");
    assert!(bits_eq(&still.data, &reference(&net_b, &x)));
    assert_eq!(client.stats().expect("stats").generation, 1);

    // Empty path falls back to the configured reload path (plan A's file).
    assert_eq!(client.reload("").expect("transport"), Ok(2));
    let back = client.infer(x.shape(), x.data()).expect("transport").expect("served");
    assert!(bits_eq(&back.data, &reference(&net_a, &x)), "configured path reload back to A");

    drop(client);
    let stats = finish(handle, join);
    assert_eq!(stats.reloads_ok, 2);
    assert_eq!(stats.reloads_rejected, 1);
    assert_eq!(stats.protocol_errors, 0);

    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}

/// Register a no-op `SIGUSR1` handler via raw `sigaction(2)` with
/// `sa_flags = 0` — deliberately *without* `SA_RESTART`, so every delivery
/// interrupts whatever syscall a thread is blocked in with `EINTR`.
/// (`signal(2)` via glibc sets `SA_RESTART`, which would hide exactly the
/// retry paths this test exists to exercise.)
#[cfg(target_os = "linux")]
fn install_noop_sigusr1() {
    extern "C" fn noop(_sig: i32) {}

    #[repr(C)]
    struct SigAction {
        handler: usize,
        mask: [u64; 16],
        flags: i32,
        _pad: i32,
        restorer: usize,
    }
    extern "C" {
        fn sigaction(signum: i32, act: *const SigAction, old: *mut SigAction) -> i32;
    }
    let act = SigAction {
        handler: noop as *const () as usize,
        mask: [0; 16],
        flags: 0,
        _pad: 0,
        restorer: 0,
    };
    const SIGUSR1: i32 = 10;
    let rc = unsafe { sigaction(SIGUSR1, &act, std::ptr::null_mut()) };
    assert_eq!(rc, 0, "sigaction(SIGUSR1) failed");
}

#[cfg(target_os = "linux")]
#[test]
fn poll_backend_serves_bit_identically_through_an_eintr_storm() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    install_noop_sigusr1();
    let net_cfg = NetConfig { use_poll_backend: true, ..NetConfig::default() };
    let (net, addr, handle, join) = front_end(serve_cfg(), net_cfg);

    // Storm thread: pepper the whole process with SIGUSR1. Delivery lands
    // on an arbitrary thread — reactor mid-poll, worker mid-wait, client
    // mid-read — and every one of them must treat EINTR as "try again".
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
        fn getpid() -> i32;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let storm = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let pid = unsafe { getpid() };
            while !stop.load(Ordering::Relaxed) {
                unsafe { kill(pid, 10) };
                std::thread::sleep(Duration::from_micros(200));
            }
        })
    };

    let mut client = Client::connect(addr).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let items: Vec<Tensor> = (0..24).map(|i| sample(800 + i)).collect();
    let ids: Vec<u64> =
        items.iter().map(|x| client.send_infer(x.shape(), x.data()).expect("send")).collect();
    let mut seen = 0;
    while seen < items.len() {
        match client.recv_reply().expect("reply under signal storm") {
            Message::InferOk { req_id, data, .. } => {
                let at = ids.iter().position(|&id| id == req_id).expect("known id");
                assert!(
                    bits_eq(&data, &reference(&net, &items[at])),
                    "reply diverged under EINTR storm"
                );
                seen += 1;
            }
            other => panic!("expected INFER_OK, got {other:?}"),
        }
    }

    stop.store(true, Ordering::Relaxed);
    storm.join().expect("storm thread");
    let stats = finish(handle, join);
    assert_eq!(stats.replies_ok, items.len() as u64);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn poll_backend_drains_a_slow_reader_without_hanging() {
    use da_nn::net::frame;

    let net_cfg = NetConfig { use_poll_backend: true, ..NetConfig::default() };
    let (net, addr, handle, join) = front_end(serve_cfg(), net_cfg);

    // A raw socket that bursts requests, never reads, then trickles.
    let mut slow = TcpStream::connect(addr).expect("connect");
    let items: Vec<Tensor> = (0..6).map(|i| sample(900 + i)).collect();
    for (i, x) in items.iter().enumerate() {
        let msg = Message::Infer {
            req_id: i as u64 + 1,
            deadline_us: 0,
            shape: x.shape().to_vec(),
            data: x.data().to_vec(),
        };
        slow.write_all(&frame::encode(&msg)).expect("burst");
    }
    // Let the replies pile up in the reactor's write buffer, then start
    // the drain with the slow reader still holding them.
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();

    // Trickle-read the drain: tiny chunks with pauses. The reactor must
    // keep flushing as the window reopens instead of dropping the
    // connection or hanging past its drain timeout.
    slow.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut decoder = FrameDecoder::new();
    let mut got = 0usize;
    let mut chunk = [0u8; 48];
    'read: loop {
        while let Some(payload) =
            decoder.next_payload(DEFAULT_MAX_FRAME).expect("well-formed frames")
        {
            match frame::decode(&payload).expect("decodable reply") {
                Message::InferOk { req_id, data, .. } => {
                    let at = req_id as usize - 1;
                    assert!(
                        bits_eq(&data, &reference(&net, &items[at])),
                        "slow-drained reply diverged"
                    );
                    got += 1;
                }
                other => panic!("expected INFER_OK, got {other:?}"),
            }
            if got == items.len() {
                break 'read;
            }
        }
        let n = slow.read(&mut chunk).expect("server must keep flushing");
        assert!(n > 0, "EOF before every drained reply arrived ({got}/{})", items.len());
        decoder.push(&chunk[..n]);
        std::thread::sleep(Duration::from_millis(2));
    }

    let stats = join.join().expect("reactor thread").expect("reactor exit");
    assert_eq!(stats.replies_ok, items.len() as u64, "every reply must survive the drain");
    drop(handle);
}
