//! Conformance tests for int8 inference plans
//! ([`InferencePlan::compile_quantized`]) and quantized serving.
//!
//! The quantized plan's semantics are "the scalar multiplier over decoded
//! code pairs, accumulated in exact f32" — the kernel-level bit-identity
//! (LUT gather vs scalar multiplier) lives in
//! `da_arith/tests/quantized_conformance.rs`. Here we pin the *plan*:
//!
//! * on-grid single-layer stacks are **bit-identical** to the f32 plan for
//!   every multiplier kind (when every operand sits exactly on the code
//!   grid, quantization is lossless and the two plans must agree to the
//!   last ULP — this exercises LUT addressing, patch gathers, padding,
//!   tails, and accumulation order end to end);
//! * quantized logits stay close to the f32 plan's on random stacks;
//! * results are deterministic and independent of batch composition (the
//!   property the batch-serving contract rests on), including through a
//!   concurrently loaded [`BatchServer::compile_quantized`] server;
//! * steady-state serving does not allocate;
//! * stacks without a quantized form decline to compile.

use std::sync::Arc;
use std::time::Duration;

use da_arith::MultiplierKind;
use da_nn::engine::{InferencePlan, PlanPrecision};
use da_nn::layers::{Conv2d, Dense, Dropout, Flatten, Layer, MaxPool2d, Relu};
use da_nn::serve::{BatchServer, Pending, ServeConfig};
use da_nn::zoo::{dq_convnet, DqMode};
use da_nn::Network;
use da_tensor::Tensor;
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// A tensor of integers whose observed range is exactly `[-128, 127]`, so
/// `QuantParams::from_range` derives scale 1 / zero-point 128 and every
/// value sits exactly on the code grid.
fn on_grid_weights(shape: &[usize], rng: &mut rand::rngs::StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    assert!(n >= 2);
    let mut data: Vec<f32> = (0..n).map(|_| rng.gen_range(-128i32..=127) as f32).collect();
    data[0] = -128.0;
    data[1] = 127.0;
    Tensor::from_vec(data, shape)
}

/// An input batch of integers spanning exactly `[0, 255]` (scale 1,
/// zero-point 0).
fn on_grid_input(shape: &[usize], rng: &mut rand::rngs::StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    let mut data: Vec<f32> = (0..n).map(|_| rng.gen_range(0i32..=255) as f32).collect();
    data[0] = 0.0;
    data[1] = 255.0;
    Tensor::from_vec(data, shape)
}

fn assert_bit_equal(got: &Tensor, want: &Tensor, ctx: &str) {
    assert_eq!(got.shape(), want.shape(), "{ctx}: shape");
    for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: elem {i}: {x:?} vs {y:?}");
    }
}

/// When every operand is exactly representable, the int8 plan must equal
/// the f32 plan bit for bit: the LUT entry *is* `multiply(w, x)` and the
/// adds run in the same ascending-k order. One conv (odd spatial size and
/// padding exercise the gather and the lane tails) and one dense layer,
/// for every multiplier kind plus native.
#[test]
fn on_grid_single_layer_plans_are_bit_exact_to_f32() {
    let mut r = rng(11);
    for kind in MultiplierKind::ALL.into_iter().map(Some).chain([None]) {
        let mult = kind.map(|k| k.build());

        // Conv: cout=3 (row tail), 9x9 input, pad=1 (zero taps), stride 2.
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, &mut r);
        conv.params_mut()[0]
            .data_mut()
            .copy_from_slice(on_grid_weights(&[3 * 2 * 3 * 3], &mut r).data());
        conv.params_mut()[1].data_mut().copy_from_slice(&[3.0, -7.0, 11.0]);
        let mut net = Network::new("on-grid-conv").push(conv);
        net.set_multiplier(mult.clone());
        let x = on_grid_input(&[2, 2, 9, 9], &mut r);
        let f32_plan = InferencePlan::compile(&net, mult.clone()).expect("compilable");
        let q_plan = InferencePlan::compile_quantized(&net, mult.clone(), &x).expect("quantizable");
        assert_eq!(q_plan.precision(), PlanPrecision::Int8);
        assert_eq!(f32_plan.precision(), PlanPrecision::F32);
        assert_bit_equal(
            &q_plan.predict_batch(&x),
            &f32_plan.predict_batch(&x),
            &format!("conv {kind:?}"),
        );

        // Dense: out=5 (ragged j tail in every kernel).
        let mut fc = Dense::new(7, 5, &mut r);
        fc.params_mut()[0].data_mut().copy_from_slice(on_grid_weights(&[5 * 7], &mut r).data());
        fc.params_mut()[1].data_mut().copy_from_slice(&[1.0, 0.0, -2.0, 3.0, 5.0]);
        let mut net = Network::new("on-grid-dense").push(fc);
        net.set_multiplier(mult.clone());
        let x = on_grid_input(&[3, 7], &mut r);
        let f32_plan = InferencePlan::compile(&net, mult.clone()).expect("compilable");
        let q_plan = InferencePlan::compile_quantized(&net, mult.clone(), &x).expect("quantizable");
        assert_bit_equal(
            &q_plan.predict_batch(&x),
            &f32_plan.predict_batch(&x),
            &format!("dense {kind:?}"),
        );
    }
}

fn tiny_cnn(seed: u64) -> Network {
    let mut r = rng(seed);
    Network::new("quant-tiny")
        .push(Conv2d::new(1, 4, 3, 1, 1, &mut r))
        .push(Relu)
        .push(MaxPool2d::new(2, 2))
        .push(Conv2d::new(4, 6, 3, 1, 0, &mut r))
        .push(Relu)
        .push(Dropout::new(0.5))
        .push(Flatten)
        .push(Dense::new(6 * 3 * 3, 8, &mut r))
        .push(Relu)
        .push(Dense::new(8, 5, &mut r))
}

/// Quantized logits track the f32 plan on random stacks. The tolerance is
/// per multiplier: native products respond smoothly to a one-code operand
/// nudge, but the AMA5 product is `1.f_a · 2^(ea+eb-126)` — a nudge that
/// crosses an operand's exponent boundary flips the product by 2×, so
/// Ax-FPM amplifies quantization noise discontinuously (that sensitivity
/// *is* the paper's defense; accuracy preservation is asserted separately
/// on a trained LeNet in `tests/quantized_serving.rs`).
#[test]
fn quantized_logits_stay_close_to_f32_plan() {
    for (kind, tol) in [
        (None, 0.15f32),
        (Some(MultiplierKind::AxFpm), 0.40),
        (Some(MultiplierKind::Bfloat16), 0.20),
    ] {
        let mut net = tiny_cnn(21);
        let mult = kind.map(|k: MultiplierKind| k.build());
        net.set_multiplier(mult.clone());
        let mut r = rng(22);
        let calibration = Tensor::rand_uniform(&[16, 1, 10, 10], 0.0, 1.0, &mut r);
        let x = Tensor::rand_uniform(&[8, 1, 10, 10], 0.0, 1.0, &mut r);
        let f32_plan = InferencePlan::compile(&net, mult.clone()).expect("compilable");
        let q_plan =
            InferencePlan::compile_quantized(&net, mult, &calibration).expect("quantizable");
        let want = f32_plan.predict_batch(&x);
        let got = q_plan.predict_batch(&x);
        let spread = want.data().iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-3);
        for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
            assert!(
                (g - w).abs() <= tol * spread + 0.02,
                "{kind:?} elem {i}: quantized {g} vs f32 {w} (spread {spread})"
            );
        }
    }
}

/// A sample's quantized logits must not depend on its batch: per-item runs
/// equal the batched run bitwise (the serving contract's foundation), and
/// repeated runs are deterministic.
#[test]
fn quantized_plan_is_deterministic_and_batch_independent() {
    let mut net = tiny_cnn(31);
    net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
    let mut r = rng(32);
    let calibration = Tensor::rand_uniform(&[8, 1, 10, 10], 0.0, 1.0, &mut r);
    let plan = InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &calibration)
        .expect("quantizable");
    let x = Tensor::rand_uniform(&[6, 1, 10, 10], 0.0, 1.0, &mut r);
    let batched = plan.predict_batch(&x);
    assert_bit_equal(&plan.predict_batch(&x), &batched, "repeat determinism");
    for i in 0..6 {
        let single = plan.predict_batch(&Tensor::stack(&[x.batch_item(i)]));
        for (j, (g, w)) in single.data().iter().zip(&batched.data()[i * 5..(i + 1) * 5]).enumerate()
        {
            assert_eq!(g.to_bits(), w.to_bits(), "item {i} elem {j}");
        }
    }
    assert_eq!(plan.predict(&x).len(), 6);
}

/// Steady-state quantized serving performs no workspace allocation.
#[test]
fn quantized_workspaces_are_reused_across_calls() {
    let mut net = tiny_cnn(41);
    net.set_multiplier(Some(MultiplierKind::Bfloat16.build()));
    let mut r = rng(42);
    let calibration = Tensor::rand_uniform(&[4, 1, 10, 10], 0.0, 1.0, &mut r);
    let plan = InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &calibration)
        .expect("quantizable");
    let x = Tensor::rand_uniform(&[2, 1, 10, 10], 0.0, 1.0, &mut r);
    let _ = plan.predict_batch(&x);
    let after_first = plan.workspace_allocations();
    assert!(after_first > 0, "first call must size the arena");
    for _ in 0..5 {
        let _ = plan.predict_batch(&x);
    }
    assert_eq!(plan.workspace_allocations(), after_first, "steady state must not allocate");
}

/// A stack ending in pooling gets an explicit decode step and still serves.
#[test]
fn stack_ending_in_pool_decodes_to_f32() {
    let mut r = rng(51);
    let net = Network::new("pool-end")
        .push(Conv2d::new(1, 2, 3, 1, 1, &mut r))
        .push(Relu)
        .push(MaxPool2d::new(2, 2));
    let x = Tensor::rand_uniform(&[2, 1, 8, 8], 0.0, 1.0, &mut r);
    let f32_plan = InferencePlan::compile(&net, None).expect("compilable");
    let q_plan = InferencePlan::compile_quantized(&net, None, &x).expect("quantizable");
    let want = f32_plan.predict_batch(&x);
    let got = q_plan.predict_batch(&x);
    assert_eq!(got.shape(), want.shape());
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert!((g - w).abs() < 0.1, "elem {i}: {g} vs {w}");
    }
}

/// Concurrently served quantized logits are bit-identical to a serial run
/// of the same plan — the batch-server contract carries over to int8.
#[test]
fn quantized_serving_is_bit_identical_under_concurrency() {
    let mut net = tiny_cnn(61);
    net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
    let mut r = rng(62);
    let calibration = Tensor::rand_uniform(&[8, 1, 10, 10], 0.0, 1.0, &mut r);
    let plan = InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &calibration)
        .expect("quantizable");
    let server = BatchServer::compile_quantized(
        &net,
        &calibration,
        ServeConfig {
            workers: 2,
            max_batch: 3,
            flush_deadline: Duration::from_micros(100),
            queue_capacity: 16,
            ..ServeConfig::default()
        },
    )
    .expect("quantizable");
    let samples: Vec<Tensor> =
        (0..24).map(|_| Tensor::rand_uniform(&[1, 10, 10], 0.0, 1.0, &mut r)).collect();
    let served: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let server = &server;
                let samples = &samples;
                scope.spawn(move || {
                    let pending: Vec<Pending> = (0..6)
                        .map(|j| server.submit(&samples[t * 6 + j]).expect("accepting"))
                        .collect();
                    pending.into_iter().map(|p| p.wait().expect("served")).collect::<Vec<Tensor>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client")).collect()
    });
    for (i, row) in served.iter().enumerate() {
        let want = plan.predict_batch(&Tensor::stack(&[samples[i].clone()]));
        for (j, (g, w)) in row.data().iter().zip(want.data()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "sample {i} elem {j}");
        }
    }
    assert!(server.stats().items >= 24);
    assert!(!server.is_stale(&net));
    net.set_multiplier(None);
    assert!(server.is_stale(&net));
}

/// Stacks with no quantized form (batch norm, DoReFa activation
/// quantizers, opaque layers) decline to compile, like the f32 plan does
/// for uncompilable stacks.
#[test]
fn unquantizable_stacks_decline() {
    let mut r = rng(71);
    let dq = dq_convnet(10, DqMode::Full, 4, &mut r);
    let x = Tensor::rand_uniform(&[2, 3, 32, 32], 0.0, 1.0, &mut r);
    assert!(InferencePlan::compile(&dq, None).is_some(), "dq compiles in f32");
    assert!(InferencePlan::compile_quantized(&dq, None, &x).is_none(), "but not to int8");
    assert!(BatchServer::compile_quantized(&dq, &x, ServeConfig::default()).is_none());

    struct Opaque;
    impl Layer for Opaque {
        fn name(&self) -> &'static str {
            "opaque"
        }
        fn forward(&self, x: &Tensor, _mode: da_nn::Mode) -> (Tensor, da_nn::Cache) {
            (x.clone(), da_nn::Cache::none())
        }
        fn backward(&self, _cache: &da_nn::Cache, grad: &Tensor) -> (Tensor, Vec<Tensor>) {
            (grad.clone(), Vec::new())
        }
    }
    let net = Network::new("opaque").push(Opaque);
    let x = Tensor::zeros(&[1, 3]);
    assert!(InferencePlan::compile_quantized(&net, None, &x).is_none());
}

/// A multiplier mismatch declines exactly like the f32 compiler.
#[test]
fn quantized_multiplier_mismatch_declines() {
    let mut r = rng(81);
    let mut net = Network::new("mismatch").push(Dense::new(4, 3, &mut r));
    net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
    let x = Tensor::rand_uniform(&[2, 4], 0.0, 1.0, &mut r);
    assert!(InferencePlan::compile_quantized(&net, None, &x).is_none());
    assert!(InferencePlan::compile_quantized(&net, Some(MultiplierKind::Bfloat16.build()), &x)
        .is_none());
    assert!(InferencePlan::compile_quantized(&net, net.multiplier().cloned(), &x).is_some());
    let _ = Arc::clone(net.multiplier().expect("installed"));
}

/// A tensor of integers on the **int4 grid**: values in `[-7, 8]` with both
/// endpoints present, so `QuantParams4::from_range` derives scale 1 /
/// zero-point 7 and every weight decodes exactly.
fn on_grid4_weights(shape: &[usize], rng: &mut rand::rngs::StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    assert!(n >= 2);
    let mut data: Vec<f32> = (0..n).map(|_| rng.gen_range(-7i32..=8) as f32).collect();
    data[0] = -7.0;
    data[1] = 8.0;
    Tensor::from_vec(data, shape)
}

/// When weights sit exactly on the 16-code grid (and activations on the
/// 256-code grid), the int4 plan must pick int4 for every layer and equal
/// the f32 plan bit for bit — the shuffle-GEMM analogue of
/// [`on_grid_single_layer_plans_are_bit_exact_to_f32`], for every
/// multiplier kind plus native.
#[test]
fn on_grid_int4_plans_pick_int4_and_are_bit_exact_to_f32() {
    let mut r = rng(101);
    for kind in MultiplierKind::ALL.into_iter().map(Some).chain([None]) {
        let mult = kind.map(|k| k.build());

        // Conv: cout=3 (ragged shuffle tail), pad=1, stride 2.
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, &mut r);
        conv.params_mut()[0]
            .data_mut()
            .copy_from_slice(on_grid4_weights(&[3 * 2 * 3 * 3], &mut r).data());
        conv.params_mut()[1].data_mut().copy_from_slice(&[3.0, -7.0, 11.0]);
        let mut net = Network::new("on-grid4-conv").push(conv);
        net.set_multiplier(mult.clone());
        let x = on_grid_input(&[2, 2, 9, 9], &mut r);
        let f32_plan = InferencePlan::compile(&net, mult.clone()).expect("compilable");
        let q4_plan =
            InferencePlan::compile_quantized_int4(&net, mult.clone(), &x).expect("quantizable");
        assert_eq!(q4_plan.precision(), PlanPrecision::Int4Weights);
        assert_eq!(q4_plan.int4_layer_mix(), (1, 0), "conv {kind:?}: int4 chosen");
        assert_bit_equal(
            &q4_plan.predict_batch(&x),
            &f32_plan.predict_batch(&x),
            &format!("conv4 {kind:?}"),
        );

        // Dense: out=5 (ragged j tail on every shuffle path).
        let mut fc = Dense::new(7, 5, &mut r);
        fc.params_mut()[0].data_mut().copy_from_slice(on_grid4_weights(&[5 * 7], &mut r).data());
        fc.params_mut()[1].data_mut().copy_from_slice(&[1.0, 0.0, -2.0, 3.0, 5.0]);
        let mut net = Network::new("on-grid4-dense").push(fc);
        net.set_multiplier(mult.clone());
        let x = on_grid_input(&[3, 7], &mut r);
        let f32_plan = InferencePlan::compile(&net, mult.clone()).expect("compilable");
        let q4_plan =
            InferencePlan::compile_quantized_int4(&net, mult.clone(), &x).expect("quantizable");
        assert_eq!(q4_plan.int4_layer_mix(), (1, 0), "dense {kind:?}: int4 chosen");
        assert_bit_equal(
            &q4_plan.predict_batch(&x),
            &f32_plan.predict_batch(&x),
            &format!("dense4 {kind:?}"),
        );
    }
}

/// A layer whose weight mass collapses between int4 codes must fall back to
/// the int8 gather: 20 weights of 0.03 against a range pinned to `[0, 1]`
/// all snap to code 0 (scale 1/15), losing the entire output — the
/// calibration gap blows past the threshold and the compiler keeps int8 for
/// that layer, while a well-spread layer in the same stack stays int4.
#[test]
fn off_grid_weight_mass_falls_back_to_int8_per_layer() {
    let mut r = rng(111);
    // Layer 1: all weights collapse under int4 (0.03·15 rounds to code 0);
    // the 1.0 weight pins the observed range so the scale cannot adapt.
    let mut bad = Dense::new(20, 2, &mut r);
    {
        let mut params = bad.params_mut();
        let w = params[0].data_mut();
        w[..20].copy_from_slice(&[0.03; 20]);
        w[20..].fill(0.0);
        w[20] = 1.0;
        params[1].data_mut().fill(0.0);
    }
    let net = Network::new("int4-fallback").push(bad);
    let x = on_grid_input(&[4, 20], &mut r).map(|v| v / 255.0);
    let plan = InferencePlan::compile_quantized_int4(&net, None, &x).expect("quantizable");
    assert_eq!(plan.precision(), PlanPrecision::Int4Weights);
    assert_eq!(plan.int4_layer_mix(), (0, 1), "collapsed layer must keep int8");
    // The fallback layer still serves like the plain int8 plan.
    let int8 = InferencePlan::compile_quantized(&net, None, &x).expect("quantizable");
    assert_bit_equal(&plan.predict_batch(&x), &int8.predict_batch(&x), "fallback serving");

    // On-grid weights in the same shape stay int4.
    let mut good = Dense::new(20, 2, &mut r);
    good.params_mut()[0].data_mut().copy_from_slice(on_grid4_weights(&[2 * 20], &mut r).data());
    good.params_mut()[1].data_mut().fill(0.0);
    let net = Network::new("int4-kept").push(good);
    let x = on_grid_input(&[4, 20], &mut r);
    let plan = InferencePlan::compile_quantized_int4(&net, None, &x).expect("quantizable");
    assert_eq!(plan.int4_layer_mix(), (1, 0), "well-spread layer keeps int4");
}

/// The int4 plan keeps the quantized serving contract on a mixed stack:
/// logits track the f32 plan, results are deterministic and batch-
/// independent, and steady-state serving does not allocate.
#[test]
fn int4_plan_keeps_the_serving_contract() {
    let mut net = tiny_cnn(121);
    net.set_multiplier(Some(MultiplierKind::AxFpm.build()));
    let mut r = rng(122);
    let calibration = Tensor::rand_uniform(&[8, 1, 10, 10], 0.0, 1.0, &mut r);
    let plan = InferencePlan::compile_quantized_int4(&net, net.multiplier().cloned(), &calibration)
        .expect("quantizable");
    let (int4, int8) = plan.int4_layer_mix();
    assert_eq!(int4 + int8, 4, "all four GEMM layers quantize one way or the other");
    let x = Tensor::rand_uniform(&[6, 1, 10, 10], 0.0, 1.0, &mut r);

    let f32_plan = InferencePlan::compile(&net, net.multiplier().cloned()).expect("compilable");
    let want = f32_plan.predict_batch(&x);
    let got = plan.predict_batch(&x);
    let spread = want.data().iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-3);
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert!(
            (g - w).abs() <= 0.6 * spread + 0.02,
            "elem {i}: int4 {g} vs f32 {w} (spread {spread})"
        );
    }

    assert_bit_equal(&plan.predict_batch(&x), &got, "repeat determinism");
    for i in 0..6 {
        let single = plan.predict_batch(&Tensor::stack(&[x.batch_item(i)]));
        for (j, (g, w)) in single.data().iter().zip(&got.data()[i * 5..(i + 1) * 5]).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "item {i} elem {j}");
        }
    }

    let after_first = plan.workspace_allocations();
    for _ in 0..5 {
        let _ = plan.predict_batch(&x);
    }
    assert_eq!(plan.workspace_allocations(), after_first, "steady state must not allocate");
}

/// Served int4 logits are bit-identical to a serial run of the same
/// mixed-precision plan — the batching contract carries over to int4.
#[test]
fn int4_serving_is_bit_identical_to_the_plan() {
    let mut net = tiny_cnn(141);
    net.set_multiplier(Some(MultiplierKind::Heap.build()));
    let mut r = rng(142);
    let calibration = Tensor::rand_uniform(&[6, 1, 10, 10], 0.0, 1.0, &mut r);
    let plan = InferencePlan::compile_quantized_int4(&net, net.multiplier().cloned(), &calibration)
        .expect("quantizable");
    let server = BatchServer::compile_quantized_int4(
        &net,
        &calibration,
        ServeConfig {
            workers: 2,
            max_batch: 3,
            flush_deadline: Duration::from_micros(100),
            queue_capacity: 16,
            ..ServeConfig::default()
        },
    )
    .expect("quantizable");
    let samples: Vec<Tensor> =
        (0..8).map(|_| Tensor::rand_uniform(&[1, 10, 10], 0.0, 1.0, &mut r)).collect();
    let pending: Vec<Pending> =
        samples.iter().map(|s| server.submit(s).expect("accepting")).collect();
    for (i, p) in pending.into_iter().enumerate() {
        let row = p.wait().expect("served");
        let want = plan.predict_batch(&Tensor::stack(&[samples[i].clone()]));
        for (j, (g, w)) in row.data().iter().zip(want.data()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "sample {i} elem {j}");
        }
    }
    assert!(server.stats().items >= 8);
}

/// Layers with identical quantizer pairs share one product-table `Arc`
/// instead of building duplicate 256×256 (or 256×16) tables: two identity
/// dense layers preserve the activation range exactly, so their
/// (activation, weight) parameter pairs — and therefore their tables —
/// coincide.
#[test]
fn identical_quantizer_pairs_share_one_product_lut() {
    let mut r = rng(131);
    let identity = |r: &mut rand::rngs::StdRng| {
        let mut fc = Dense::new(4, 4, r);
        let mut params = fc.params_mut();
        let w = params[0].data_mut();
        w.fill(0.0);
        for i in 0..4 {
            w[i * 4 + i] = 1.0;
        }
        params[1].data_mut().fill(0.0);
        drop(params);
        fc
    };
    let net = Network::new("shared-lut").push(identity(&mut r)).push(identity(&mut r));
    // Inputs spanning exactly [0, 1]: the identity layers preserve the
    // range, so both layers calibrate to the same activation quantizer.
    let mut x = Tensor::rand_uniform(&[5, 4], 0.0, 1.0, &mut r);
    x.data_mut()[0] = 0.0;
    x.data_mut()[1] = 1.0;

    let int8 = InferencePlan::compile_quantized(&net, None, &x).expect("quantizable");
    assert_eq!(int8.product_lut_sharing(), (2, 1), "int8: one table for both layers");

    let int4 = InferencePlan::compile_quantized_int4(&net, None, &x).expect("quantizable");
    assert_eq!(int4.int4_layer_mix(), (2, 0), "identity weights sit on the int4 grid");
    assert_eq!(int4.product_lut_sharing(), (2, 1), "int4: one table for both layers");

    // Distinct ranges must NOT share: scaling the second layer's weights
    // changes its activation range and weight params.
    let mut scaled = identity(&mut r);
    for v in scaled.params_mut()[0].data_mut().iter_mut() {
        *v *= 2.0;
    }
    let net = Network::new("distinct-lut").push(identity(&mut r)).push(scaled);
    let int8 = InferencePlan::compile_quantized(&net, None, &x).expect("quantizable");
    assert_eq!(int8.product_lut_sharing(), (2, 2), "distinct pairs keep distinct tables");
}

/// Calibration batches validate like serving inputs.
#[test]
#[should_panic(expected = "input channel mismatch")]
fn calibration_validates_like_forward() {
    let mut r = rng(91);
    let net = Network::new("bad").push(Conv2d::new(3, 4, 3, 1, 0, &mut r));
    let x = Tensor::zeros(&[1, 2, 8, 8]);
    let _ = InferencePlan::compile_quantized(&net, None, &x);
}
