//! Concurrency conformance suite for the cross-request batch server.
//!
//! The contract under test (see `da_nn::serve`'s module docs): logits
//! returned through [`BatchServer`] are **bit-identical** to a serial
//! [`InferencePlan::predict_batch`] on the same samples — for every
//! [`MultiplierKind`] and the native path, under any concurrent schedule.
//! The schedules here are adversarial on purpose: single-sample batches,
//! zero flush deadlines, queues small enough that submitters spend most of
//! their time blocked on backpressure, and more submitter threads than
//! workers.

use std::sync::mpsc;
use std::time::Duration;

use da_arith::MultiplierKind;
use da_nn::layers::{Conv2d, Dense, Dropout, Flatten, MaxPool2d, Relu};
use da_nn::serve::{BatchServer, Pending, ServeConfig, ServeError};
use da_nn::{InferencePlan, Mode, Network};
use da_tensor::Tensor;
use rand::SeedableRng;

const SUBMITTERS: usize = 4;
const ITEMS_PER_SUBMITTER: usize = 8;

fn tiny_cnn(seed: u64) -> Network {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Network::new("conformance-cnn")
        .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
        .push(Relu)
        .push(MaxPool2d::new(2, 2))
        .push(Dropout::new(0.5))
        .push(Flatten)
        .push(Dense::new(3 * 4 * 4, 5, &mut rng))
}

/// Deterministic per-(thread, index) samples, with NaN/Inf/denormal values
/// spliced in: special operands must survive the queue round-trip with the
/// same bits as serial inference.
fn item(thread: usize, index: usize) -> Tensor {
    let mut rng =
        rand::rngs::StdRng::seed_from_u64(0xC0FFEE + (thread as u64) * 1000 + index as u64);
    let mut x = Tensor::randn(&[1, 8, 8], 1.0, &mut rng);
    let poison = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1e-40, -0.0];
    if index % 2 == 1 {
        let at = (thread * 13 + index * 7) % x.len();
        x.data_mut()[at] = poison[(thread + index) % poison.len()];
    }
    x
}

/// All samples in `(thread, index)` order, stacked for the serial reference.
fn all_items() -> Vec<Tensor> {
    (0..SUBMITTERS).flat_map(|t| (0..ITEMS_PER_SUBMITTER).map(move |j| item(t, j))).collect()
}

/// Run `SUBMITTERS` threads against `server`, each submitting its items with
/// a window of in-flight requests, and return logits in `(thread, index)`
/// order.
fn submit_concurrently(server: &BatchServer) -> Vec<Vec<Tensor>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                scope.spawn(move || {
                    // Submit everything before waiting on anything: maximal
                    // interleaving with the other submitters.
                    let pending: Vec<Pending> = (0..ITEMS_PER_SUBMITTER)
                        .map(|j| server.submit(&item(t, j)).expect("server accepting"))
                        .collect();
                    pending
                        .into_iter()
                        .map(|p| p.wait().expect("server serving"))
                        .collect::<Vec<Tensor>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("submitter thread")).collect()
    })
}

/// The conformance property: concurrent submission through `config` equals
/// serial `predict_batch`, bit for bit, for `kind`.
fn assert_conformance(kind: Option<MultiplierKind>, config: ServeConfig, tag: &str) {
    let mut net = tiny_cnn(17);
    net.set_multiplier(kind.map(|k| k.build()));
    // The ground truth is the per-layer eval forward itself (the serial
    // reference the engine is property-tested against), not another plan.
    let reference = net.forward(&Tensor::stack(&all_items()), Mode::Eval).0;
    let out_len = reference.shape()[1];

    let server = BatchServer::compile(&net, config).expect("tiny cnn compiles");
    let served = submit_concurrently(&server);
    let stats = server.stats();
    assert_eq!(stats.items as usize, SUBMITTERS * ITEMS_PER_SUBMITTER, "{tag}: lost items");

    for (t, rows) in served.iter().enumerate() {
        for (j, row) in rows.iter().enumerate() {
            let i = t * ITEMS_PER_SUBMITTER + j;
            let want = &reference.data()[i * out_len..(i + 1) * out_len];
            assert_eq!(row.shape(), &[out_len], "{tag}: wrong logits shape");
            for (k, (g, w)) in row.data().iter().zip(want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "{tag} {kind:?}: thread {t} item {j} logit {k}: {g} vs {w}"
                );
            }
        }
    }
}

#[test]
fn concurrent_logits_are_bit_identical_for_every_kind() {
    // Default-ish config: batches form, queue deep enough to avoid blocking.
    for kind in MultiplierKind::ALL.into_iter().map(Some).chain([None]) {
        assert_conformance(
            kind,
            ServeConfig {
                workers: 2,
                max_batch: 8,
                flush_deadline: Duration::from_micros(200),
                queue_capacity: 64,
                ..ServeConfig::default()
            },
            "coalescing",
        );
    }
}

#[test]
fn adversarial_scheduling_is_still_bit_identical() {
    // The schedules the issue calls out: tiny max_batch, zero deadline, and
    // a queue so small that every submitter blocks on backpressure.
    let configs = [
        (
            "max_batch=1",
            ServeConfig {
                workers: 2,
                max_batch: 1,
                flush_deadline: Duration::ZERO,
                queue_capacity: 64,
                ..ServeConfig::default()
            },
        ),
        (
            "zero-deadline",
            ServeConfig {
                workers: 3,
                max_batch: 4,
                flush_deadline: Duration::ZERO,
                queue_capacity: 64,
                ..ServeConfig::default()
            },
        ),
        (
            "queue-full",
            ServeConfig {
                workers: 1,
                max_batch: 2,
                flush_deadline: Duration::ZERO,
                queue_capacity: 1,
                ..ServeConfig::default()
            },
        ),
    ];
    // All kinds under the cheapest config; the paper's Ax-FPM under all.
    for kind in MultiplierKind::ALL.into_iter().map(Some).chain([None]) {
        assert_conformance(kind, configs[0].1.clone(), configs[0].0);
    }
    for (tag, config) in &configs[1..] {
        assert_conformance(Some(MultiplierKind::AxFpm), config.clone(), tag);
        assert_conformance(None, config.clone(), tag);
    }
}

#[test]
fn served_predict_batch_is_bit_identical_under_concurrent_load() {
    // `BatchServer::predict_batch` (the attack-harness route) interleaved
    // with single-sample submitters from other threads.
    let mut net = tiny_cnn(23);
    net.set_multiplier(Some(MultiplierKind::Heap.build()));
    let plan = InferencePlan::compile(&net, net.multiplier().cloned()).expect("compiles");
    let batch = Tensor::stack(&all_items());
    let reference = plan.predict_batch(&batch);

    let server = BatchServer::compile(
        &net,
        ServeConfig {
            workers: 2,
            max_batch: 4,
            flush_deadline: Duration::ZERO,
            queue_capacity: 8,
            ..ServeConfig::default()
        },
    )
    .expect("compiles");
    std::thread::scope(|scope| {
        let noise = scope.spawn(|| {
            for j in 0..ITEMS_PER_SUBMITTER {
                let got = server.logits(&item(1, j)).expect("serving");
                let i = ITEMS_PER_SUBMITTER + j;
                let want =
                    &reference.data()[i * reference.shape()[1]..(i + 1) * reference.shape()[1]];
                // Bitwise comparison: NaN-poisoned samples must round-trip
                // with identical bits (f32 `==` would reject NaN == NaN).
                for (g, w) in got.data().iter().zip(want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "noise item {j} diverged: {g} vs {w}");
                }
            }
        });
        let got = server.predict_batch(&batch).expect("served");
        assert_eq!(got.shape(), reference.shape());
        for (i, (g, w)) in got.data().iter().zip(reference.data()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "served batch elem {i} diverged: {g} vs {w}");
        }
        noise.join().expect("noise thread");
    });
}

#[test]
fn backpressure_bounds_the_queue_and_shutdown_fails_pending() {
    let net = tiny_cnn(29);
    // No workers: nothing drains, so the capacity bound is observable
    // deterministically.
    let server = BatchServer::compile(
        &net,
        ServeConfig {
            workers: 0,
            max_batch: 4,
            flush_deadline: Duration::ZERO,
            queue_capacity: 3,
            ..ServeConfig::default()
        },
    )
    .expect("compiles");
    let x = Tensor::zeros(&[1, 8, 8]);
    let queued: Vec<Pending> =
        (0..3).map(|_| server.try_submit(&x).expect("under capacity")).collect();
    assert_eq!(server.try_submit(&x).err(), Some(ServeError::QueueFull));
    // A blocked submitter unblocks with `ShuttingDown` when shutdown
    // begins instead of deadlocking.
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || {
            let result = server.submit(&x); // blocks: queue is full
            tx.send(result.err()).expect("report");
        });
        // Give the submitter time to block, then stop accepting.
        std::thread::sleep(Duration::from_millis(20));
        server.begin_shutdown();
        assert_eq!(rx.recv().expect("submitter finished"), Some(ServeError::ShuttingDown));
    });
    // Dropping the server fails whatever was still queued.
    drop(server);
    for pending in queued {
        assert_eq!(pending.wait().err(), Some(ServeError::ShuttingDown));
    }
}

#[test]
fn batches_coalesce_under_a_flush_deadline() {
    let net = tiny_cnn(31);
    let server = BatchServer::compile(
        &net,
        ServeConfig {
            workers: 1,
            max_batch: 8,
            // Long enough that the 8 sub-millisecond submits below land
            // well inside the first batch's fill window.
            flush_deadline: Duration::from_millis(500),
            queue_capacity: 64,
            ..ServeConfig::default()
        },
    )
    .expect("compiles");
    let pending: Vec<Pending> =
        (0..8).map(|j| server.submit(&item(0, j)).expect("accepting")).collect();
    for p in pending {
        p.wait().expect("serving");
    }
    let stats = server.stats();
    assert_eq!(stats.items, 8);
    assert!(stats.batches < 8, "no coalescing happened: {stats:?}");
    assert!(stats.largest_batch >= 2, "{stats:?}");
    assert!(stats.mean_batch() > 1.0, "{stats:?}");
}

#[test]
fn mixed_shape_requests_batch_separately_and_correctly() {
    // A ReLU-only stack accepts any item shape, so one server can see
    // heterogeneous requests; batches must only coalesce same-shape runs.
    let net = Network::new("relu-only").push(Relu);
    let server = BatchServer::compile(
        &net,
        ServeConfig {
            workers: 2,
            max_batch: 4,
            flush_deadline: Duration::from_micros(100),
            queue_capacity: 32,
            ..ServeConfig::default()
        },
    )
    .expect("relu compiles");
    let shapes: [&[usize]; 2] = [&[2, 3], &[5]];
    let mut rng = rand::rngs::StdRng::seed_from_u64(37);
    let items: Vec<Tensor> = (0..16).map(|i| Tensor::randn(shapes[i % 2], 1.0, &mut rng)).collect();
    let pending: Vec<Pending> =
        items.iter().map(|x| server.submit(x).expect("accepting")).collect();
    for (x, p) in items.iter().zip(pending) {
        let got = p.wait().expect("serving");
        assert_eq!(got.shape(), x.shape(), "shape must round-trip");
        for (g, v) in got.data().iter().zip(x.data()) {
            assert_eq!(g.to_bits(), v.max(0.0).to_bits());
        }
    }
}

#[test]
fn execution_failure_is_contained_to_its_batch() {
    let net = tiny_cnn(41);
    let server = BatchServer::compile(
        &net,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            flush_deadline: Duration::ZERO,
            queue_capacity: 8,
            ..ServeConfig::default()
        },
    )
    .expect("compiles");
    // Wrong spatial size: the plan's shape inference rejects it.
    let bad = server.logits(&Tensor::zeros(&[1, 6, 6]));
    match bad {
        Err(ServeError::Execution(msg)) => {
            assert!(msg.contains("feature mismatch"), "unexpected message: {msg}")
        }
        other => panic!("expected an execution error, got {other:?}"),
    }
    // The worker survived and keeps serving well-formed requests.
    let good = server.logits(&item(0, 0)).expect("worker still alive");
    assert_eq!(good.shape(), &[5]);
    let stats = server.stats();
    assert_eq!(stats.failed_batches, 1);
    assert_eq!(stats.items, 1);
}

#[test]
fn one_nanosecond_flush_deadline_is_stable_and_bit_identical() {
    // Regression: a ~1 ns flush deadline makes essentially every deadline
    // wait arrive already expired (`now >= until` on entry) and pins the
    // adaptive policy at its floor. The worker loop must handle that with
    // saturating deadline arithmetic — no panic, no missed wakeup, no
    // spin that starves submitters — while the bit-identity contract
    // holds under the usual adversarial schedule. Runs in CI's
    // `--test-threads {1,4}` conformance matrix.
    assert_conformance(
        None,
        ServeConfig {
            workers: 2,
            max_batch: 8,
            flush_deadline: Duration::from_nanos(1),
            flush_deadline_min: Duration::from_nanos(1),
            queue_capacity: 4, // small enough that backpressure engages too
            default_deadline: None,
            ..ServeConfig::default()
        },
        "1ns-deadline",
    );
    assert_conformance(
        Some(MultiplierKind::AxFpm),
        ServeConfig {
            workers: 3,
            max_batch: 4,
            flush_deadline: Duration::from_nanos(1),
            flush_deadline_min: Duration::from_nanos(1),
            queue_capacity: 4,
            default_deadline: None,
            ..ServeConfig::default()
        },
        "1ns-deadline-axfpm",
    );
}
