//! Overload-control property suite for the serving edge.
//!
//! The overload layer (token-bucket admission in `da_nn::net`, deadline-
//! aware shedding in `da_nn::serve`) exists to keep the server answering
//! under pressure. These tests pin the two invariants that make shedding
//! safe to rely on:
//!
//! 1. **A refused request never reaches a worker.** Whether it is shed at
//!    admission, traded away by shed-oldest, or rate-limited at the
//!    socket, the refusal is typed and immediate — the worker pool's
//!    `items` counter only ever counts requests that were answered `Ok`.
//! 2. **Survivors are untouched.** Every accepted reply stays
//!    bit-identical to serial inference no matter how much traffic was
//!    refused around it.
//!
//! The unit suites in `serve.rs` / `net/server.rs` cover each mechanism in
//! isolation; this file floods mixed traffic through the whole stack.

#![cfg(unix)]

use std::time::{Duration, Instant};

use da_nn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use da_nn::net::{Client, ErrCode, NetConfig, NetServer};
use da_nn::serve::{BatchServer, Pending, Reply, ServeConfig, ServeError};
use da_nn::{Mode, Network};
use da_tensor::Tensor;
use rand::SeedableRng;

fn tiny_cnn(seed: u64) -> Network {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Network::new("overload-cnn")
        .push(Conv2d::new(1, 3, 3, 1, 1, &mut rng))
        .push(Relu)
        .push(MaxPool2d::new(2, 2))
        .push(Flatten)
        .push(Dense::new(3 * 4 * 4, 5, &mut rng))
}

fn sample(seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(&[1, 8, 8], 0.0, 1.0, &mut rng)
}

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Serial ground truth for one sample.
fn reference(net: &Network, x: &Tensor) -> Vec<f32> {
    net.forward(&Tensor::stack(std::slice::from_ref(x)), Mode::Eval).0.data().to_vec()
}

/// Flood a warm (slow-looking) server with mixed traffic: deadline-free
/// requests that must be served, interleaved with requests whose budget the
/// service estimate already blows. Every outcome is typed, every refusal
/// skips the workers entirely, and every survivor is bit-identical.
#[test]
fn shed_and_refused_requests_never_reach_a_worker() {
    let net = tiny_cnn(7);
    let config = ServeConfig {
        workers: 1,
        max_batch: 4,
        flush_deadline: Duration::ZERO,
        flush_deadline_min: Duration::ZERO,
        queue_capacity: 8,
        ..ServeConfig::default()
    };
    let server = BatchServer::compile(&net, config).expect("tiny cnn compiles");

    // Make the server look expensive: with a 10 s per-item estimate, any
    // 5 ms budget is provably doomed at admission. Real batches blend the
    // estimate back down, but from 10 s it cannot decay below 5 ms within
    // this flood (α = 1/8 over at most a few dozen batches).
    server.force_ewma_service_ns(10_000_000_000);

    let total = 64usize;
    let items: Vec<Tensor> = (0..total).map(|i| sample(100 + i as u64)).collect();
    let mut admitted: Vec<(usize, Pending)> = Vec::new();
    let mut shed = 0usize;
    let mut refused = 0usize;
    for (i, x) in items.iter().enumerate() {
        if i % 2 == 0 {
            // Deadline-free: may be refused QueueFull under the burst, but
            // must never be shed by the deadline machinery.
            match server.try_submit(x) {
                Ok(p) => admitted.push((i, p)),
                Err(ServeError::QueueFull) => refused += 1,
                Err(other) => panic!("deadline-free refusal must be QueueFull, got {other:?}"),
            }
        } else {
            // Doomed budget: the estimate says ~10 s, the caller offers 5 ms.
            let deadline = Some(Instant::now() + Duration::from_millis(5));
            match server.try_submit_deadline(x, deadline) {
                Err(ServeError::Overloaded { retry_after }) => {
                    assert!(retry_after > Duration::ZERO, "sheds carry a retry hint");
                    shed += 1;
                }
                Err(other) => panic!("doomed deadline must shed as Overloaded, got {other:?}"),
                Ok(_) => panic!("request {i} admitted against a provably blown deadline"),
            }
        }
    }
    assert_eq!(shed, total / 2, "every doomed budget is shed at admission");

    // Every admitted request resolves Ok (no worker faults here) and
    // bit-identical to serial inference — shedding around it changed
    // nothing.
    let mut served = 0usize;
    for (i, pending) in admitted {
        let Reply { data, shape, degraded } = pending.wait_reply().expect("admitted request serves");
        assert_eq!(shape, vec![5]);
        assert!(!degraded, "no brownout configured, no degraded replies");
        assert!(bits_eq(&data, &reference(&net, &items[i])), "sample {i} diverged");
        served += 1;
    }
    assert_eq!(served + shed + refused, total, "every request got exactly one verdict");

    // The load-bearing property: refusals never touched a worker. The pool
    // dispatched exactly the requests that came back Ok.
    let stats = server.stats();
    assert_eq!(stats.items, served as u64, "workers only ever saw accepted requests");
    assert_eq!(stats.shed_total, shed as u64);
    assert_eq!(stats.deadline_expired, 0, "admission shed beats queue expiry");
}

/// Global token bucket at the socket edge: a burst past the bucket gets
/// typed `Overloaded` + retry hints, accepted replies are bit-identical,
/// and the batch server never sees the refused requests.
#[test]
fn rate_limited_requests_get_typed_retry_hints_and_never_execute() {
    let net = tiny_cnn(17);
    let serve = ServeConfig {
        workers: 1,
        max_batch: 4,
        flush_deadline: Duration::from_micros(200),
        queue_capacity: 32,
        ..ServeConfig::default()
    };
    let server = BatchServer::compile(&net, serve).expect("tiny cnn compiles");
    // Two tokens, then ~one token per half hour: exactly two requests of
    // the burst can be admitted no matter how slowly this test runs.
    let net_cfg =
        NetConfig { rate: Some(0.0005), burst: Some(2.0), ..NetConfig::default() };
    let front = NetServer::bind(server, "127.0.0.1:0", net_cfg).expect("bind loopback");
    let (addr, handle, join) = front.spawn();

    let mut client = Client::connect(addr).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let items: Vec<Tensor> = (0..10).map(|i| sample(200 + i)).collect();
    let mut accepted = 0usize;
    let mut limited = 0usize;
    for x in &items {
        match client.infer(x.shape(), x.data()).expect("transport") {
            Ok(reply) => {
                assert!(bits_eq(&reply.data, &reference(&net, x)), "admitted reply diverged");
                accepted += 1;
            }
            Err(refusal) => {
                assert_eq!(refusal.code, ErrCode::Overloaded);
                let hint = refusal.retry_after.expect("rate limits always hint a retry");
                assert!(hint > Duration::ZERO);
                limited += 1;
            }
        }
    }
    assert_eq!(accepted, 2, "the burst capacity is exactly the bucket depth");
    assert_eq!(limited, 8);

    // Refused requests never crossed into the batch server.
    let server_stats = client.stats().expect("stats");
    assert_eq!(server_stats.items, accepted as u64, "workers only saw admitted requests");
    assert_eq!(server_stats.rate_limited, limited as u64);

    drop(client);
    handle.shutdown();
    let stats = join.join().expect("reactor thread").expect("reactor exit");
    assert_eq!(stats.rate_limited, limited as u64);
    assert_eq!(stats.replies_ok, accepted as u64);
    assert_eq!(stats.protocol_errors, 0);
}

/// Per-connection buckets are independent: one connection exhausting its
/// budget leaves a fresh connection's budget untouched.
#[test]
fn per_connection_buckets_are_independent() {
    let net = tiny_cnn(27);
    let serve = ServeConfig {
        workers: 1,
        max_batch: 4,
        flush_deadline: Duration::from_micros(200),
        queue_capacity: 32,
        ..ServeConfig::default()
    };
    let server = BatchServer::compile(&net, serve).expect("tiny cnn compiles");
    // One token per connection, negligible refill.
    let net_cfg =
        NetConfig { conn_rate: Some(0.0005), conn_burst: Some(1.0), ..NetConfig::default() };
    let front = NetServer::bind(server, "127.0.0.1:0", net_cfg).expect("bind loopback");
    let (addr, handle, join) = front.spawn();

    let x = sample(300);
    let want = reference(&net, &x);

    let mut a = Client::connect(addr).expect("connect A");
    a.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let first = a.infer(x.shape(), x.data()).expect("transport").expect("A's budget admits one");
    assert!(bits_eq(&first.data, &want));
    let refusal =
        a.infer(x.shape(), x.data()).expect("transport").expect_err("A's budget is spent");
    assert_eq!(refusal.code, ErrCode::Overloaded);
    assert!(refusal.retry_after.expect("hinted") > Duration::ZERO);

    // A fresh connection has its own bucket — A's exhaustion is invisible.
    let mut b = Client::connect(addr).expect("connect B");
    b.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let hers = b.infer(x.shape(), x.data()).expect("transport").expect("B's own budget admits");
    assert!(bits_eq(&hers.data, &want));

    drop(a);
    drop(b);
    handle.shutdown();
    let stats = join.join().expect("reactor thread").expect("reactor exit");
    assert_eq!(stats.rate_limited, 1);
    assert_eq!(stats.replies_ok, 2);
}
