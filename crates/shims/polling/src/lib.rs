//! Offline, dependency-free stand-in for the `polling` crate.
//!
//! Implements the subset of the `polling 3` API the workspace's socket
//! front end (`da_nn::net`) actually uses: a [`Poller`] that watches raw
//! file descriptors for read/write readiness, a [`Event`] value naming the
//! caller's key for each ready descriptor, a blocking [`Poller::wait`] with
//! optional timeout, and a thread-safe [`Poller::notify`] that wakes a
//! concurrent `wait` without any descriptor becoming ready (how worker
//! threads hand completions back to a reactor).
//!
//! Two backends, both raw FFI against the platform C library `std` already
//! links (this workspace has no registry access, mirroring
//! `crates/shims/memmap2`):
//!
//! * **Linux:** `epoll` (`epoll_create1`/`epoll_ctl`/`epoll_wait`),
//!   level-triggered — the natural fit for a reactor that only registers
//!   write interest while it has bytes buffered.
//! * **Other Unix:** `poll(2)` over a registration table kept in userspace.
//!   O(n) per wait instead of O(ready), but semantically identical
//!   (level-triggered, same wakeup rules).
//!
//! On Linux the `poll` fallback still compiles and is unit-tested (via
//! [`Poller::with_poll_backend`]), so the portable path cannot bit-rot on
//! the only machine CI has. Non-Unix targets get a stub whose constructor
//! returns [`io::ErrorKind::Unsupported`] — the socket front end is gated
//! to Unix, but crates depending on this shim still build.
//!
//! The wakeup channel is a self-pipe: `notify` writes one byte to a
//! non-blocking pipe whose read end is registered under a reserved key; a
//! `wait` that sees it drains the pipe and reports zero events for it.
//! Differences from upstream `polling 3`: sources are raw fds (no
//! `Source`/`AsSource` traits), events are always oneshot-free
//! (level-triggered; no re-arm needed), and `wait` fills a plain
//! `Vec<Event>` instead of an `Events` buffer type.

use std::io;
use std::time::Duration;

/// Readiness interest / readiness result for one registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier reported back when the descriptor is ready.
    /// [`Event::NOTIFY_KEY`] is reserved for the poller's internal wakeup
    /// channel and rejected by [`Poller::add`].
    pub key: usize,
    /// Interest in (or readiness of) reads.
    pub readable: bool,
    /// Interest in (or readiness of) writes.
    pub writable: bool,
}

impl Event {
    /// Key reserved for the poller's internal self-pipe.
    pub const NOTIFY_KEY: usize = usize::MAX;

    /// Read-only interest.
    pub fn readable(key: usize) -> Event {
        Event { key, readable: true, writable: false }
    }

    /// Write-only interest.
    pub fn writable(key: usize) -> Event {
        Event { key, readable: false, writable: true }
    }

    /// Read + write interest.
    pub fn all(key: usize) -> Event {
        Event { key, readable: true, writable: true }
    }

    /// No interest (keeps the registration alive for a later `modify`).
    pub fn none(key: usize) -> Event {
        Event { key, readable: false, writable: false }
    }
}

/// A readiness poller over raw file descriptors (see module docs).
pub struct Poller {
    backend: imp::Backend,
}

impl Poller {
    /// A poller on the platform's preferred backend (epoll on Linux, poll
    /// on other Unix).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { backend: imp::Backend::preferred()? })
    }

    /// A poller forced onto the portable `poll(2)` backend — exists so the
    /// fallback stays compiled and tested on Linux CI.
    #[cfg(unix)]
    pub fn with_poll_backend() -> io::Result<Poller> {
        Ok(Poller { backend: imp::Backend::poll_backend()? })
    }

    /// Start watching `fd` with the given interest.
    ///
    /// The fd must stay open until [`delete`](Poller::delete); the caller
    /// keeps ownership. Registering [`Event::NOTIFY_KEY`] is an error.
    pub fn add(&self, fd: i32, interest: Event) -> io::Result<()> {
        if interest.key == Event::NOTIFY_KEY {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "reserved key"));
        }
        self.backend.add(fd, interest)
    }

    /// Change the interest set (and/or key) of a watched descriptor.
    pub fn modify(&self, fd: i32, interest: Event) -> io::Result<()> {
        if interest.key == Event::NOTIFY_KEY {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "reserved key"));
        }
        self.backend.modify(fd, interest)
    }

    /// Stop watching a descriptor.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.backend.delete(fd)
    }

    /// Block until at least one descriptor is ready, `timeout` elapses
    /// (`None` = forever), or [`notify`](Poller::notify) is called.
    /// Ready events are appended to `events` (which is *not* cleared).
    /// Returns the number of events appended — possibly 0 on timeout or
    /// plain notify.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.backend.wait(events, timeout)
    }

    /// Wake a concurrent (or the next) [`wait`](Poller::wait) from any
    /// thread. Multiple notifies may coalesce into one wakeup.
    pub fn notify(&self) -> io::Result<()> {
        self.backend.notify()
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").finish_non_exhaustive()
    }
}

/// Clamp a timeout to whole milliseconds for the C interfaces (rounding up
/// so a 100µs timeout polls for 1ms rather than busy-spinning at 0).
#[cfg(unix)]
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let ms = if d > Duration::from_millis(ms as u64) { ms + 1 } else { ms };
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

#[cfg(unix)]
mod imp {
    use super::{timeout_ms, Event};
    use std::io;
    use std::time::Duration;

    // Shared C declarations (std links libc on every Unix target).
    extern "C" {
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    const F_SETFL: i32 = 4;
    const O_NONBLOCK: i32 = 0o4000;

    /// A non-blocking self-pipe: the wakeup channel for both backends.
    struct SelfPipe {
        rd: i32,
        wr: i32,
    }

    impl SelfPipe {
        fn new() -> io::Result<SelfPipe> {
            let mut fds = [0i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } != 0 {
                    let e = io::Error::last_os_error();
                    unsafe { close(fds[0]) };
                    unsafe { close(fds[1]) };
                    return Err(e);
                }
            }
            Ok(SelfPipe { rd: fds[0], wr: fds[1] })
        }

        fn notify(&self) -> io::Result<()> {
            // A full pipe means a wakeup is already pending; that's success.
            let n = unsafe { write(self.wr, [1u8].as_ptr(), 1) };
            if n == 1 || io::Error::last_os_error().kind() == io::ErrorKind::WouldBlock {
                Ok(())
            } else {
                Err(io::Error::last_os_error())
            }
        }

        fn drain(&self) {
            let mut buf = [0u8; 64];
            while unsafe { read(self.rd, buf.as_mut_ptr(), buf.len()) } > 0 {}
        }
    }

    impl Drop for SelfPipe {
        fn drop(&mut self) {
            unsafe { close(self.rd) };
            unsafe { close(self.wr) };
        }
    }

    pub enum Backend {
        #[cfg(target_os = "linux")]
        Epoll(epoll::EpollPoller),
        Poll(poll::PollPoller),
    }

    impl Backend {
        pub fn preferred() -> io::Result<Backend> {
            #[cfg(target_os = "linux")]
            {
                Ok(Backend::Epoll(epoll::EpollPoller::new()?))
            }
            #[cfg(not(target_os = "linux"))]
            {
                Self::poll_backend()
            }
        }

        pub fn poll_backend() -> io::Result<Backend> {
            Ok(Backend::Poll(poll::PollPoller::new()?))
        }

        pub fn add(&self, fd: i32, ev: Event) -> io::Result<()> {
            match self {
                #[cfg(target_os = "linux")]
                Backend::Epoll(p) => p.add(fd, ev),
                Backend::Poll(p) => p.add(fd, ev),
            }
        }

        pub fn modify(&self, fd: i32, ev: Event) -> io::Result<()> {
            match self {
                #[cfg(target_os = "linux")]
                Backend::Epoll(p) => p.modify(fd, ev),
                Backend::Poll(p) => p.modify(fd, ev),
            }
        }

        pub fn delete(&self, fd: i32) -> io::Result<()> {
            match self {
                #[cfg(target_os = "linux")]
                Backend::Epoll(p) => p.delete(fd),
                Backend::Poll(p) => p.delete(fd),
            }
        }

        pub fn wait(&self, events: &mut Vec<Event>, t: Option<Duration>) -> io::Result<usize> {
            match self {
                #[cfg(target_os = "linux")]
                Backend::Epoll(p) => p.wait(events, t),
                Backend::Poll(p) => p.wait(events, t),
            }
        }

        pub fn notify(&self) -> io::Result<()> {
            match self {
                #[cfg(target_os = "linux")]
                Backend::Epoll(p) => p.notify(),
                Backend::Poll(p) => p.notify(),
            }
        }
    }

    #[cfg(target_os = "linux")]
    mod epoll {
        use super::{Event, SelfPipe};
        use std::io;
        use std::time::Duration;

        // The kernel packs struct epoll_event only on x86-64 (12 bytes:
        // u32 events + u64 data, `__EPOLL_PACKED`); every other
        // architecture uses the natural 16-byte layout with 4 bytes of
        // padding after `events`. Matching the per-arch ABI matters in
        // `wait`: an undersized element would make the kernel write past
        // the event buffer.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        struct EpollEvent {
            events: u32,
            data: u64,
        }

        const _: () = assert!(
            std::mem::size_of::<EpollEvent>() == if cfg!(target_arch = "x86_64") { 12 } else { 16 },
            "EpollEvent must match the kernel's per-arch epoll_event layout",
        );

        extern "C" {
            fn epoll_create1(flags: i32) -> i32;
            fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            fn epoll_wait(epfd: i32, events: *mut EpollEvent, max: i32, timeout_ms: i32) -> i32;
            fn close(fd: i32) -> i32;
        }

        const EPOLL_CTL_ADD: i32 = 1;
        const EPOLL_CTL_DEL: i32 = 2;
        const EPOLL_CTL_MOD: i32 = 3;
        const EPOLLIN: u32 = 0x001;
        const EPOLLOUT: u32 = 0x004;
        const EPOLLERR: u32 = 0x008;
        const EPOLLHUP: u32 = 0x010;
        const EPOLL_CLOEXEC: i32 = 0o2000000;
        const EINTR: i32 = 4;

        pub struct EpollPoller {
            epfd: i32,
            pipe: SelfPipe,
        }

        impl EpollPoller {
            pub fn new() -> io::Result<EpollPoller> {
                let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(io::Error::last_os_error());
                }
                let pipe = match SelfPipe::new() {
                    Ok(p) => p,
                    Err(e) => {
                        unsafe { close(epfd) };
                        return Err(e);
                    }
                };
                let poller = EpollPoller { epfd, pipe };
                poller.ctl(EPOLL_CTL_ADD, poller.pipe.rd, Event::readable(Event::NOTIFY_KEY))?;
                Ok(poller)
            }

            fn ctl(&self, op: i32, fd: i32, ev: Event) -> io::Result<()> {
                let mut raw = EpollEvent {
                    events: if ev.readable { EPOLLIN } else { 0 }
                        | if ev.writable { EPOLLOUT } else { 0 },
                    data: ev.key as u64,
                };
                if unsafe { epoll_ctl(self.epfd, op, fd, &mut raw) } != 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }

            pub fn add(&self, fd: i32, ev: Event) -> io::Result<()> {
                self.ctl(EPOLL_CTL_ADD, fd, ev)
            }

            pub fn modify(&self, fd: i32, ev: Event) -> io::Result<()> {
                self.ctl(EPOLL_CTL_MOD, fd, ev)
            }

            pub fn delete(&self, fd: i32) -> io::Result<()> {
                self.ctl(EPOLL_CTL_DEL, fd, Event::none(0))
            }

            pub fn wait(
                &self,
                events: &mut Vec<Event>,
                timeout: Option<Duration>,
            ) -> io::Result<usize> {
                let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
                let n = loop {
                    let n = unsafe {
                        epoll_wait(
                            self.epfd,
                            buf.as_mut_ptr(),
                            buf.len() as i32,
                            crate::timeout_ms(timeout),
                        )
                    };
                    if n >= 0 {
                        break n as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.raw_os_error() != Some(EINTR) {
                        return Err(err);
                    }
                    // EINTR: retry with the same timeout (close enough; the
                    // reactor re-derives deadlines each iteration anyway).
                };
                let mut appended = 0;
                for raw in &buf[..n] {
                    let key = { raw.data } as usize;
                    if key == Event::NOTIFY_KEY {
                        self.pipe.drain();
                        continue;
                    }
                    let bits = { raw.events };
                    events.push(Event {
                        key,
                        // ERR/HUP surface as readable+writable so the owner
                        // attempts I/O and observes the real error.
                        readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                        writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                    });
                    appended += 1;
                }
                Ok(appended)
            }

            pub fn notify(&self) -> io::Result<()> {
                self.pipe.notify()
            }
        }

        impl Drop for EpollPoller {
            fn drop(&mut self) {
                unsafe { close(self.epfd) };
            }
        }
    }

    mod poll {
        use super::{timeout_ms, Event, SelfPipe};
        use std::io;
        use std::sync::Mutex;
        use std::time::Duration;

        #[repr(C)]
        #[derive(Clone, Copy)]
        struct PollFd {
            fd: i32,
            events: i16,
            revents: i16,
        }

        extern "C" {
            // nfds_t is `unsigned long` on the Unix targets this shim
            // supports (glibc, musl, macOS).
            fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout_ms: i32) -> i32;
        }

        const POLLIN: i16 = 0x001;
        const POLLOUT: i16 = 0x004;
        const POLLERR: i16 = 0x008;
        const POLLHUP: i16 = 0x010;
        const POLLNVAL: i16 = 0x020;
        const EINTR: i32 = 4;

        /// Portable fallback: registration table + `poll(2)` per wait.
        pub struct PollPoller {
            pipe: SelfPipe,
            registry: Mutex<Vec<(i32, Event)>>,
        }

        impl PollPoller {
            pub fn new() -> io::Result<PollPoller> {
                Ok(PollPoller { pipe: SelfPipe::new()?, registry: Mutex::new(Vec::new()) })
            }

            pub fn add(&self, fd: i32, ev: Event) -> io::Result<()> {
                let mut reg = self.registry.lock().expect("poll registry");
                if reg.iter().any(|(f, _)| *f == fd) {
                    return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd registered"));
                }
                reg.push((fd, ev));
                Ok(())
            }

            pub fn modify(&self, fd: i32, ev: Event) -> io::Result<()> {
                let mut reg = self.registry.lock().expect("poll registry");
                match reg.iter_mut().find(|(f, _)| *f == fd) {
                    Some(slot) => {
                        slot.1 = ev;
                        Ok(())
                    }
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }

            pub fn delete(&self, fd: i32) -> io::Result<()> {
                let mut reg = self.registry.lock().expect("poll registry");
                let before = reg.len();
                reg.retain(|(f, _)| *f != fd);
                if reg.len() == before {
                    return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
                }
                Ok(())
            }

            pub fn wait(
                &self,
                events: &mut Vec<Event>,
                timeout: Option<Duration>,
            ) -> io::Result<usize> {
                // Snapshot the registry so user callbacks can add/modify
                // between waits without holding the lock across poll().
                let mut fds: Vec<PollFd> =
                    vec![PollFd { fd: self.pipe.rd, events: POLLIN, revents: 0 }];
                let mut keys: Vec<usize> = vec![Event::NOTIFY_KEY];
                {
                    let reg = self.registry.lock().expect("poll registry");
                    for (fd, ev) in reg.iter() {
                        let mask = if ev.readable { POLLIN } else { 0 }
                            | if ev.writable { POLLOUT } else { 0 };
                        fds.push(PollFd { fd: *fd, events: mask, revents: 0 });
                        keys.push(ev.key);
                    }
                }
                let n = loop {
                    let n = unsafe {
                        poll(fds.as_mut_ptr(), fds.len() as core::ffi::c_ulong, timeout_ms(timeout))
                    };
                    if n >= 0 {
                        break n;
                    }
                    let err = io::Error::last_os_error();
                    if err.raw_os_error() != Some(EINTR) {
                        return Err(err);
                    }
                };
                if n == 0 {
                    return Ok(0);
                }
                let mut appended = 0;
                for (slot, key) in fds.iter().zip(&keys) {
                    if slot.revents == 0 {
                        continue;
                    }
                    if *key == Event::NOTIFY_KEY {
                        self.pipe.drain();
                        continue;
                    }
                    let bad = slot.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
                    events.push(Event {
                        key: *key,
                        readable: slot.revents & POLLIN != 0 || bad,
                        writable: slot.revents & POLLOUT != 0 || bad,
                    });
                    appended += 1;
                }
                Ok(appended)
            }

            pub fn notify(&self) -> io::Result<()> {
                self.pipe.notify()
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::Event;
    use std::io;
    use std::time::Duration;

    /// Non-Unix stub: constructing a poller reports `Unsupported`.
    pub struct Backend;

    impl Backend {
        pub fn preferred() -> io::Result<Backend> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "no poller backend on this target"))
        }
        pub fn add(&self, _fd: i32, _ev: Event) -> io::Result<()> {
            unreachable!("Backend cannot be constructed on this target")
        }
        pub fn modify(&self, _fd: i32, _ev: Event) -> io::Result<()> {
            unreachable!("Backend cannot be constructed on this target")
        }
        pub fn delete(&self, _fd: i32) -> io::Result<()> {
            unreachable!("Backend cannot be constructed on this target")
        }
        pub fn wait(&self, _ev: &mut Vec<Event>, _t: Option<Duration>) -> io::Result<usize> {
            unreachable!("Backend cannot be constructed on this target")
        }
        pub fn notify(&self) -> io::Result<()> {
            unreachable!("Backend cannot be constructed on this target")
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn pollers() -> Vec<(&'static str, Poller)> {
        vec![
            ("preferred", Poller::new().expect("poller")),
            ("poll-fallback", Poller::with_poll_backend().expect("poll backend")),
        ]
    }

    /// A connected localhost TCP pair.
    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    #[test]
    fn timeout_elapses_with_no_events() {
        for (name, poller) in pollers() {
            let mut events = Vec::new();
            let start = Instant::now();
            let n = poller.wait(&mut events, Some(Duration::from_millis(20))).expect("wait");
            assert_eq!(n, 0, "{name}");
            assert!(start.elapsed() >= Duration::from_millis(15), "{name}: returned early");
        }
    }

    #[test]
    fn readable_event_fires_when_data_arrives() {
        for (name, poller) in pollers() {
            let (mut client, server) = tcp_pair();
            poller.add(server.as_raw_fd(), Event::readable(7)).expect("add");
            let mut events = Vec::new();
            // Nothing to read yet.
            let n = poller.wait(&mut events, Some(Duration::from_millis(10))).expect("wait");
            assert_eq!(n, 0, "{name}: spurious readiness");
            client.write_all(b"hello").expect("write");
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
            assert_eq!(n, 1, "{name}");
            assert_eq!(events[0].key, 7, "{name}");
            assert!(events[0].readable, "{name}");
            poller.delete(server.as_raw_fd()).expect("delete");
        }
    }

    #[test]
    fn modify_switches_interest() {
        for (name, poller) in pollers() {
            let (mut client, server) = tcp_pair();
            client.write_all(b"x").expect("write");
            poller.add(server.as_raw_fd(), Event::none(3)).expect("add");
            let mut events = Vec::new();
            let n = poller.wait(&mut events, Some(Duration::from_millis(10))).expect("wait");
            assert_eq!(n, 0, "{name}: no-interest registration must stay silent");
            poller.modify(server.as_raw_fd(), Event::all(3)).expect("modify");
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
            assert!(n >= 1, "{name}");
            assert!(events[0].readable && events[0].writable, "{name}: {:?}", events[0]);
            poller.delete(server.as_raw_fd()).expect("delete");
        }
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        for (name, poller) in pollers() {
            let poller = std::sync::Arc::new(poller);
            let waker = poller.clone();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                waker.notify().expect("notify");
            });
            let mut events = Vec::new();
            let start = Instant::now();
            let n = poller.wait(&mut events, Some(Duration::from_secs(30))).expect("wait");
            assert_eq!(n, 0, "{name}: notify reports no events");
            assert!(start.elapsed() < Duration::from_secs(10), "{name}: notify did not wake");
            handle.join().expect("waker thread");
        }
    }

    #[test]
    fn notify_coalesces_and_does_not_leave_stale_wakeups() {
        for (name, poller) in pollers() {
            poller.notify().expect("notify 1");
            poller.notify().expect("notify 2");
            let mut events = Vec::new();
            // First wait consumes the pending wakeups (drains the pipe)...
            poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
            // ...so a second wait times out instead of spinning.
            let start = Instant::now();
            let n = poller.wait(&mut events, Some(Duration::from_millis(20))).expect("wait");
            assert_eq!(n, 0, "{name}");
            assert!(start.elapsed() >= Duration::from_millis(15), "{name}: stale wakeup");
        }
    }

    #[test]
    fn reserved_key_is_rejected() {
        for (_, poller) in pollers() {
            let (_client, server) = tcp_pair();
            let err = poller.add(server.as_raw_fd(), Event::readable(Event::NOTIFY_KEY));
            assert!(err.is_err());
        }
    }

    #[test]
    fn closed_peer_reports_readable() {
        for (name, poller) in pollers() {
            let (client, server) = tcp_pair();
            poller.add(server.as_raw_fd(), Event::readable(1)).expect("add");
            drop(client);
            let mut events = Vec::new();
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
            assert!(n >= 1, "{name}: EOF must be observable");
            assert!(events[0].readable, "{name}");
            let mut buf = [0u8; 8];
            let got = (&server).read(&mut buf).expect("read EOF");
            assert_eq!(got, 0, "{name}");
            poller.delete(server.as_raw_fd()).expect("delete");
        }
    }
}
