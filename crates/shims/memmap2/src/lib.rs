//! Offline, dependency-free stand-in for the `memmap2` crate.
//!
//! Implements the subset of the `memmap2 0.9` API the workspace actually
//! uses: read-only mappings of whole files via [`Mmap::map`], dereferencing
//! to `&[u8]`.
//!
//! On Unix targets the mapping is a real `mmap(2)` (`PROT_READ`,
//! `MAP_PRIVATE`) obtained through a raw FFI declaration — `std` already
//! links the platform C library, so no `libc` crate is needed. Pages are
//! faulted in lazily and shared through the page cache, so N processes (or
//! N worker threads holding one `Arc<Mmap>`) mapping the same snapshot pay
//! for its resident bytes once. On non-Unix targets the "mapping" degrades
//! to a 64-byte-aligned heap buffer filled with one `read`: the zero-copy
//! property is lost but the API and the alignment guarantee callers rely on
//! are preserved.
//!
//! Differences from upstream: only `Mmap` (read-only) exists, `map` takes
//! the whole file (no offset/len builder), and an empty file maps to an
//! empty slice instead of failing with `EINVAL`.

use std::fs::File;
use std::io;
use std::ops::Deref;

/// A read-only memory map of an entire file.
///
/// # Safety contract
///
/// As with upstream `memmap2`, [`Mmap::map`] is `unsafe` because the
/// underlying file must not be truncated or mutated while the mapping is
/// live: on Unix the mapped bytes alias the file, and external modification
/// can change them (or fault the process on truncation) behind safe `&[u8]`
/// borrows. Callers that need integrity against concurrent modification
/// must validate the mapped bytes (e.g. with a checksum) after mapping.
pub struct Mmap {
    inner: Inner,
}

// The mapped region is immutable for the lifetime of the value and freed
// exactly once in `Drop`, so sharing across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// # Safety
    ///
    /// The file must not be mutated or truncated for the lifetime of the
    /// returned mapping (see the type-level safety contract).
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        Ok(Mmap { inner: Inner::map(file, len)? })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.as_slice().len()).finish()
    }
}

#[cfg(unix)]
use unix::Inner;

#[cfg(unix)]
mod unix {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    // Raw declarations of the two calls we need; std links libc on every
    // Unix target, so the symbols are always present.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    pub struct Inner {
        ptr: *mut c_void,
        len: usize,
    }

    impl Inner {
        pub fn map(file: &File, len: usize) -> io::Result<Inner> {
            if len == 0 {
                // mmap(2) rejects zero-length maps with EINVAL; model an
                // empty file as an empty slice instead.
                return Ok(Inner { ptr: std::ptr::null_mut(), len: 0 });
            }
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Inner { ptr, len })
        }

        pub fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Inner {
        fn drop(&mut self) {
            if self.len != 0 {
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

#[cfg(not(unix))]
use fallback::Inner;

#[cfg(not(unix))]
mod fallback {
    use std::alloc::{alloc, dealloc, Layout};
    use std::fs::File;
    use std::io::{self, Read};

    /// Heap-buffer fallback: one aligned allocation filled by `read`.
    /// Sections in the snapshot format are 64-byte aligned relative to the
    /// file start, so the buffer itself is 64-byte aligned to keep typed
    /// views (e.g. `&[f32]`) valid.
    pub struct Inner {
        ptr: *mut u8,
        len: usize,
    }

    const ALIGN: usize = 64;

    impl Inner {
        pub fn map(file: &File, len: usize) -> io::Result<Inner> {
            if len == 0 {
                return Ok(Inner { ptr: std::ptr::null_mut(), len: 0 });
            }
            let layout = Layout::from_size_align(len, ALIGN)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "bad mapping layout"))?;
            let ptr = unsafe { alloc(layout) };
            if ptr.is_null() {
                return Err(io::Error::new(io::ErrorKind::OutOfMemory, "mapping allocation"));
            }
            let buf = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
            let mut src = file;
            if let Err(e) = src.read_exact(buf) {
                unsafe { dealloc(ptr, layout) };
                return Err(e);
            }
            Ok(Inner { ptr, len })
        }

        pub fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Inner {
        fn drop(&mut self) {
            if self.len != 0 {
                let layout = Layout::from_size_align(self.len, ALIGN).expect("validated in map");
                unsafe { dealloc(self.ptr, layout) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("memmap2-shim-{}-{tag}.bin", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("contents");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert_eq!(&map[..], &payload[..]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn maps_empty_file() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert!(map.is_empty());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fallback_note_alignment() {
        // On Unix, mmap returns page-aligned addresses; the fallback path
        // allocates 64-byte aligned. Either way the base pointer satisfies
        // the strictest alignment the snapshot format needs.
        let path = temp_path("align");
        std::fs::File::create(&path).unwrap().write_all(&[0u8; 256]).unwrap();
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert_eq!(map.as_slice().as_ptr() as usize % 64, 0);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }
}
