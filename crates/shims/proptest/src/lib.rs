//! Offline, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the subset of the `proptest 1.x` API the workspace's property
//! tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), [`Strategy`] over ranges and
//! [`collection::vec`], `any::<T>()`, and the `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (no persistence files) and failing cases are reported
//! without shrinking. Case count defaults to 64 and can be overridden with
//! the `PROPTEST_CASES` environment variable or `ProptestConfig::with_cases`.

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

/// A failed property within a [`proptest!`] case.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Wrap a failure message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for the full domain of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The `proptest::prelude::any::<T>()` entry point.
pub fn any<T: rand::StandardSample>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: rand::StandardSample> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Things usable as the size argument of [`vec()`].
    pub trait IntoSizeRange {
        /// Draw a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// `proptest::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-importable prelude, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Stable 64-bit FNV-1a hash of the test's name, used to decorrelate the
/// deterministic case streams of different tests.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Define property tests, `proptest`-style.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases as u64 {
                    let mut __rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                        base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("proptest {} case {case} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
        for _ in 0..1000 {
            let x = (0.5f32..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&x));
            let n = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let fixed = crate::collection::vec(0.0f32..1.0, 5usize).generate(&mut rng);
        assert_eq!(fixed.len(), 5);
        for _ in 0..100 {
            let v = crate::collection::vec(0u64..10, 1usize..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: args bind, asserts pass, cases run.
        #[test]
        fn macro_smoke(a in 0.0f32..1.0, v in crate::collection::vec(0u64..5, 3usize)) {
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert_eq!(v.len(), 3);
            prop_assert_ne!(a, 2.0);
        }
    }
}
