//! Named fault-injection sites ("failpoints") for chaos testing.
//!
//! Production code sprinkles [`check`] calls at interesting failure
//! boundaries — snapshot reads, batch execution, socket accepts. With the
//! default feature set every call compiles to an `#[inline(always)]` no-op
//! returning `None`, so release builds carry zero cost. With the
//! `failpoints` cargo feature enabled, tests arm a site by name with
//! [`set`] and the next matching `check` fires the configured [`Fault`]:
//!
//! - [`Fault::Err`] — `check` returns `Some(message)`; the call site maps
//!   it into its native error type.
//! - [`Fault::Panic`] — `check` panics with the message, exactly as a bug
//!   in that region would.
//! - [`Fault::Delay`] — `check` sleeps, then returns `None`; models a slow
//!   disk or a long batch.
//!
//! A [`Spec`] gates when the fault fires: `skip` passes through the first
//! N hits untouched, `count` limits how many times it fires before the
//! site disarms itself (`usize::MAX` = forever). "Panic on the 3rd batch"
//! is `Spec::new(Fault::Panic(..)).skip(2).times(1)`.
//!
//! The registry is global and shared by every thread in the process, so
//! chaos tests that arm sites must serialize themselves (e.g. behind a
//! static mutex) and call [`reset`] when done.

#[cfg(feature = "failpoints")]
mod active {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    /// The action an armed failpoint performs when it fires.
    #[derive(Clone, Debug)]
    pub enum Fault {
        /// Return this message to the call site as an error.
        Err(String),
        /// Panic with this message.
        Panic(String),
        /// Sleep for this long, then continue normally.
        Delay(Duration),
    }

    /// An armed failpoint: a fault plus skip/count gating.
    #[derive(Clone, Debug)]
    pub struct Spec {
        pub(crate) fault: Fault,
        pub(crate) skip: usize,
        pub(crate) count: usize,
    }

    impl Spec {
        /// Arm `fault` to fire on every hit until cleared.
        pub fn new(fault: Fault) -> Self {
            Spec { fault, skip: 0, count: usize::MAX }
        }

        /// Let the first `n` hits pass through before firing.
        pub fn skip(mut self, n: usize) -> Self {
            self.skip = n;
            self
        }

        /// Fire at most `n` times, then disarm the site.
        pub fn times(mut self, n: usize) -> Self {
            self.count = n;
            self
        }
    }

    #[derive(Default)]
    struct Site {
        spec: Option<Spec>,
        hits: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Site>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Arm the named site. Replaces any previous spec and resets gating,
    /// but keeps the lifetime hit counter.
    pub fn set(name: &str, spec: Spec) {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.entry(name.to_string()).or_default().spec = Some(spec);
    }

    /// Disarm the named site (hit counter is kept).
    pub fn clear(name: &str) {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(site) = reg.get_mut(name) {
            site.spec = None;
        }
    }

    /// Disarm every site and zero all hit counters.
    pub fn reset() {
        registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Lifetime hit count for the named site (armed or not).
    pub fn hits(name: &str) -> u64 {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.get(name).map(|s| s.hits).unwrap_or(0)
    }

    /// Evaluate the named site. Returns `Some(message)` if an `Err` fault
    /// fired; panics or sleeps for `Panic`/`Delay` faults; `None` otherwise.
    pub fn check(name: &str) -> Option<String> {
        let fired = {
            let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
            let site = reg.entry(name.to_string()).or_default();
            site.hits += 1;
            match &mut site.spec {
                None => None,
                Some(spec) => {
                    if spec.skip > 0 {
                        spec.skip -= 1;
                        None
                    } else if spec.count == 0 {
                        None
                    } else {
                        if spec.count != usize::MAX {
                            spec.count -= 1;
                        }
                        Some(spec.fault.clone())
                    }
                }
            }
            // lock drops here so Delay/Panic never hold the registry
        };
        match fired {
            None => None,
            Some(Fault::Err(msg)) => Some(msg),
            Some(Fault::Panic(msg)) => panic!("failpoint {name}: {msg}"),
            Some(Fault::Delay(d)) => {
                std::thread::sleep(d);
                None
            }
        }
    }
}

#[cfg(feature = "failpoints")]
pub use active::{check, clear, hits, reset, set, Fault, Spec};

#[cfg(not(feature = "failpoints"))]
mod inert {
    use std::time::Duration;

    /// Inert stand-in; see the `failpoints` feature for the real thing.
    #[derive(Clone, Debug)]
    pub enum Fault {
        Err(String),
        Panic(String),
        Delay(Duration),
    }

    /// Inert stand-in; see the `failpoints` feature for the real thing.
    #[derive(Clone, Debug)]
    pub struct Spec;

    impl Spec {
        pub fn new(_fault: Fault) -> Self {
            Spec
        }
        pub fn skip(self, _n: usize) -> Self {
            self
        }
        pub fn times(self, _n: usize) -> Self {
            self
        }
    }

    #[inline(always)]
    pub fn check(_name: &str) -> Option<String> {
        None
    }
    #[inline(always)]
    pub fn set(_name: &str, _spec: Spec) {}
    #[inline(always)]
    pub fn clear(_name: &str) {}
    #[inline(always)]
    pub fn reset() {}
    #[inline(always)]
    pub fn hits(_name: &str) -> u64 {
        0
    }
}

#[cfg(not(feature = "failpoints"))]
pub use inert::{check, clear, hits, reset, set, Fault, Spec};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    // The registry is process-global; serialize tests that touch it.
    static GUARD: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unarmed_site_is_silent_but_counted() {
        let _g = lock();
        reset();
        assert_eq!(check("t/unarmed"), None);
        assert_eq!(check("t/unarmed"), None);
        assert_eq!(hits("t/unarmed"), 2);
    }

    #[test]
    fn err_fault_fires_and_respects_count() {
        let _g = lock();
        reset();
        set("t/err", Spec::new(Fault::Err("boom".into())).times(2));
        assert_eq!(check("t/err").as_deref(), Some("boom"));
        assert_eq!(check("t/err").as_deref(), Some("boom"));
        assert_eq!(check("t/err"), None);
        assert_eq!(hits("t/err"), 3);
    }

    #[test]
    fn skip_passes_through_then_fires() {
        let _g = lock();
        reset();
        set("t/skip", Spec::new(Fault::Err("late".into())).skip(2).times(1));
        assert_eq!(check("t/skip"), None);
        assert_eq!(check("t/skip"), None);
        assert_eq!(check("t/skip").as_deref(), Some("late"));
        assert_eq!(check("t/skip"), None);
    }

    #[test]
    fn panic_fault_panics_with_site_name() {
        let _g = lock();
        reset();
        set("t/panic", Spec::new(Fault::Panic("dead".into())).times(1));
        let err = std::panic::catch_unwind(|| check("t/panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("t/panic") && msg.contains("dead"), "{msg}");
        // disarmed after firing once
        assert_eq!(check("t/panic"), None);
    }

    #[test]
    fn delay_fault_sleeps_then_continues() {
        let _g = lock();
        reset();
        set("t/delay", Spec::new(Fault::Delay(Duration::from_millis(30))).times(1));
        let t0 = Instant::now();
        assert_eq!(check("t/delay"), None);
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn clear_disarms_without_losing_hits() {
        let _g = lock();
        reset();
        set("t/clear", Spec::new(Fault::Err("x".into())));
        assert!(check("t/clear").is_some());
        clear("t/clear");
        assert_eq!(check("t/clear"), None);
        assert_eq!(hits("t/clear"), 2);
    }
}
