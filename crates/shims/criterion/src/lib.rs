//! Offline, dependency-free stand-in for the `criterion` bench harness.
//!
//! Provides the subset of the `criterion 0.5` API the workspace's bench
//! targets use: `Criterion::bench_function`, `benchmark_group` (with
//! `sample_size` and `finish`), `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! calibrated loop reporting ns/iteration — adequate for the relative
//! comparisons the benches make, with none of criterion's statistics.
//!
//! Set `DA_BENCH_MS` (default 200) to control per-benchmark measurement time
//! in milliseconds.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Measure `f` under `name` and print the result.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measure `f` under `group/name` and print the result.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing loop driver passed to the bench closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the calibrated number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn measurement_budget() -> Duration {
    let ms = std::env::var("DA_BENCH_MS").ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(200);
    Duration::from_millis(ms)
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    // Calibrate: grow the iteration count until one batch costs >= ~1/8 of
    // the measurement budget, then do a final measured run sized to fill it.
    let budget = measurement_budget();
    let mut iters: u64 = 1;
    let mut per_iter;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter = b.elapsed.as_secs_f64() / iters as f64;
        if b.elapsed >= budget / 8 || iters >= u64::MAX / 2 {
            break;
        }
        iters = iters.saturating_mul(4);
    }
    let final_iters = ((budget.as_secs_f64() / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000_000);
    let mut b = Bencher { iters: final_iters, elapsed: Duration::ZERO };
    f(&mut b);
    let ns = b.elapsed.as_secs_f64() * 1e9 / final_iters as f64;
    println!("bench: {name:<56} {:>14} ns/iter ({final_iters} iters)", format_ns(ns));
}

fn format_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

/// Collect bench functions into a group runner, `criterion`-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the given groups, `criterion`-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_requested_iterations() {
        let mut count = 0u64;
        let mut b = Bencher { iters: 37, elapsed: Duration::ZERO };
        b.iter(|| count += 1);
        assert_eq!(count, 37);
        assert!(b.elapsed > Duration::ZERO || count == 37);
    }

    #[test]
    fn group_api_chains() {
        std::env::set_var("DA_BENCH_MS", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        c.bench_function("top", |b| b.iter(|| black_box(2) * 2));
    }
}
