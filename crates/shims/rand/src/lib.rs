//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the subset of the `rand 0.8` API the workspace actually uses
//! is vendored here. Semantics match `rand` where the workspace depends on
//! them (determinism per seed, uniformity, range bounds); the concrete
//! bitstreams differ from upstream `rand` (the generator is xoshiro256++
//! seeded via SplitMix64 rather than ChaCha12), which no code in this
//! repository relies on.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// User-facing random value generation, `rand::Rng`-style.
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T` (over `T`'s "standard" domain:
    /// full range for integers, `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// A uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types with a "standard" uniform distribution (see [`Rng::gen`]).
pub trait StandardSample {
    /// Draw one standard-uniform value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a uniform value can be drawn from (see [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map 64 uniform bits onto `0..width` without modulo bias (fixed-point
/// multiply; residual bias is below 2⁻⁶⁴ per draw).
fn bounded(rng: &mut (impl RngCore + ?Sized), width: u64) -> u64 {
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let width = (end as i128 - start as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, width as u64) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u: $t = StandardSample::standard_sample(rng);
                let v = self.start + (self.end - self.start) * u;
                // The two roundings above can land exactly on the excluded
                // upper bound (~2⁻²² tail odds per draw); clamp to keep the
                // half-open contract.
                if v >= self.end { self.end.next_down() } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let u: $t = StandardSample::standard_sample(rng);
                start + (end - start) * u
            }
        }
    )*};
}
range_float!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the conventional seeding for xoshiro.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Random slice operations, `rand::seq::SliceRandom`-style.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod distributions {
    //! Distribution sampling, `rand::distributions`-style.

    use super::{Rng, StandardSample};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution behind [`Rng::gen`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl<T: StandardSample> Distribution<T> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::standard_sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(-2.5f32..7.5);
            assert!((-2.5..7.5).contains(&x));
            let y: f64 = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
