//! **Defensive Approximation** core: approximate classifiers, the model
//! cache, and one experiment runner per table/figure of the paper's
//! evaluation.
//!
//! The mapping from paper artifact to runner lives in [`experiments`] (and
//! in DESIGN.md §5):
//!
//! | Paper artifact | Runner |
//! |---|---|
//! | Figure 3 / 13 / 15 | [`experiments::profiles`] |
//! | Figure 4 | [`experiments::fig4`] |
//! | Tables 2 / 3 / 10 | [`experiments::transfer`] |
//! | Table 4 | [`experiments::blackbox`] |
//! | Figures 8–11 | [`experiments::whitebox`] |
//! | Figure 12 | [`experiments::confidence`] |
//! | Tables 5 | [`experiments::dq`] |
//! | Tables 6 / 8 | [`experiments::accuracy`] |
//! | Tables 7 / 9 | [`experiments::energy`] |
//! | Figure 16 | [`experiments::heatmap`] |
//!
//! Runners are deterministic in their [`Budget`] and the cache's seeds; the
//! [`ModelCache`] trains each backbone once and reuses the weights.
//!
//! Every runner's inference (accuracy sweeps, attack replay, prediction
//! filtering) routes through `da_nn`'s compiled serving engine: `Network`
//! caches an `InferencePlan` (pre-decomposed weights, fused conv tiles,
//! reused workspaces) behind `logits`/`predict`, bit-identical to the
//! per-layer forward pass.
//!
//! # Example: one Table-2 row in a few lines
//!
//! ```no_run
//! use da_core::{Budget, ModelCache};
//! use da_core::experiments::transfer;
//!
//! let cache = ModelCache::new("artifacts");
//! let budget = Budget::quick();
//! let table = transfer::table2(&cache, &budget);
//! println!("{table}");
//! ```

pub mod budget;
pub mod cache;
pub mod ensemble;
pub mod experiments;
pub mod suites;

pub use budget::Budget;
pub use cache::ModelCache;
