//! Multiplier-ensemble prediction — the paper's discussion item (3) (§9):
//! DA is orthogonal to other defenses and resembles the randomized-ensemble
//! smoothing of Liu et al. \[37\] (§10). This module votes one set of weights
//! across several hardware variants, a DA-flavored self-ensemble.

use da_attacks::TargetModel;
use da_tensor::Tensor;

/// A majority-vote classifier over several hardware variants of the same
/// network (e.g. exact + Ax-FPM + HEAP).
///
/// Ties break toward the variant listed first, so putting the most trusted
/// implementation at index 0 gives deterministic, sensible behaviour.
pub struct MultiplierEnsemble<'a> {
    variants: Vec<&'a dyn TargetModel>,
}

impl<'a> MultiplierEnsemble<'a> {
    /// Build an ensemble over the given variants.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty or class counts disagree.
    pub fn new(variants: Vec<&'a dyn TargetModel>) -> Self {
        assert!(!variants.is_empty(), "ensemble needs at least one variant");
        let classes = variants[0].num_classes();
        assert!(
            variants.iter().all(|v| v.num_classes() == classes),
            "all variants must share the class count"
        );
        MultiplierEnsemble { variants }
    }

    /// Number of voting variants.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// `true` if the ensemble has no members (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Per-variant predictions for one image.
    pub fn votes(&self, x: &Tensor) -> Vec<usize> {
        self.variants.iter().map(|v| v.predict(x)).collect()
    }

    /// Majority-vote prediction (first-listed variant breaks ties).
    pub fn predict(&self, x: &Tensor) -> usize {
        let votes = self.votes(x);
        let classes = self.variants[0].num_classes();
        let mut counts = vec![0usize; classes];
        for &v in &votes {
            counts[v] += 1;
        }
        let best = counts.iter().max().copied().unwrap_or(0);
        // Ties break in vote order (i.e., toward earlier-listed variants).
        votes.iter().copied().find(|&v| counts[v] == best).expect("non-empty votes")
    }

    /// Vote agreement in `[1/n, 1]` — a confidence proxy that needs no
    /// Monte-Carlo runs (contrast with Lecuyer et al. \[34\]).
    pub fn agreement(&self, x: &Tensor) -> f64 {
        let votes = self.votes(x);
        let winner = self.predict(x);
        votes.iter().filter(|&&v| v == winner).count() as f64 / votes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::transfer::with_multiplier;
    use crate::{Budget, ModelCache};
    use da_arith::MultiplierKind;

    #[test]
    fn ensemble_votes_and_agrees_on_clean_data() {
        let cache = ModelCache::new(std::env::temp_dir().join("da-core-ensemble"));
        let budget = Budget::smoke();
        let exact = cache.lenet(&budget);
        let ax = with_multiplier(cache.lenet(&budget), MultiplierKind::AxFpm);
        let heap = with_multiplier(cache.lenet(&budget), MultiplierKind::Heap);
        let ensemble = MultiplierEnsemble::new(vec![&exact, &ax, &heap]);
        assert_eq!(ensemble.len(), 3);

        let ds = cache.digits_test(30);
        let mut correct = 0;
        for i in 0..ds.len() {
            let x = ds.images.batch_item(i);
            let pred = ensemble.predict(&x);
            let agreement = ensemble.agreement(&x);
            assert!((1.0 / 3.0..=1.0).contains(&agreement));
            if pred == ds.labels[i] {
                correct += 1;
            }
        }
        // The ensemble must be at least as sane as a weak single model.
        assert!(correct as f64 / ds.len() as f64 > 0.6, "{correct}/30");
    }

    #[test]
    fn single_variant_ensemble_is_that_variant() {
        let cache = ModelCache::new(std::env::temp_dir().join("da-core-ensemble1"));
        let budget = Budget::smoke();
        let exact = cache.lenet(&budget);
        let ensemble = MultiplierEnsemble::new(vec![&exact]);
        let ds = cache.digits_test(5);
        for i in 0..5 {
            let x = ds.images.batch_item(i);
            assert_eq!(ensemble.predict(&x), TargetModel::predict(&exact, &x));
            assert_eq!(ensemble.agreement(&x), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one variant")]
    fn rejects_empty_ensemble() {
        let _ = MultiplierEnsemble::new(Vec::new());
    }
}
