//! Train-once model cache.
//!
//! Every experiment needs the same few backbones (LeNet-5 on SynthDigits,
//! AlexNet and the DQ ConvNets on SynthObjects). The cache trains each once
//! per budget with fixed seeds and stores the weights under the artifacts
//! directory; later calls reload in milliseconds. Corrupt cache files are
//! detected (via `da-nn`'s format validation) and retrigger training.

use std::path::{Path, PathBuf};

use rand::SeedableRng;

use da_datasets::digits::synth_digits;
use da_datasets::objects::synth_objects;
use da_datasets::Dataset;
use da_nn::io::{load_params, save_params};
use da_nn::optim::{Adam, Sgd};
use da_nn::train::{train, TrainConfig};
use da_nn::zoo::{alexnet_cifar, dq_convnet, lenet5, DqMode};
use da_nn::Network;

use crate::Budget;

/// Bump to invalidate cached weights when generators or architectures change.
const CACHE_GENERATION: u32 = 1;

/// Seeds used throughout (fixed: the experiments are deterministic).
pub mod seeds {
    /// Training-set generation.
    pub const TRAIN_DATA: u64 = 101;
    /// Test-set generation (disjoint stream from training).
    pub const TEST_DATA: u64 = 999_101;
    /// Weight initialization.
    pub const INIT: u64 = 7;
    /// Training loop shuffling/dropout.
    pub const TRAIN: u64 = 13;
}

/// A directory-backed cache of trained backbones.
#[derive(Debug, Clone)]
pub struct ModelCache {
    dir: PathBuf,
}

impl ModelCache {
    /// A cache rooted at `dir` (created on demand).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ModelCache { dir: dir.into() }
    }

    /// The conventional location: `$DA_ARTIFACTS_DIR` or `./artifacts`.
    pub fn default_location() -> Self {
        let dir = std::env::var_os("DA_ARTIFACTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("artifacts"));
        ModelCache::new(dir)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn model_path(&self, name: &str, budget: &Budget) -> PathBuf {
        self.dir
            .join("models")
            .join(format!("{name}-g{CACHE_GENERATION}-{}.bin", budget.cache_tag()))
    }

    /// Train-or-load helper: `build` constructs the architecture, `fit`
    /// trains it when no cached weights exist.
    fn train_or_load(
        &self,
        name: &str,
        budget: &Budget,
        build: impl Fn() -> Network,
        fit: impl FnOnce(&mut Network),
    ) -> Network {
        let path = self.model_path(name, budget);
        let mut net = build();
        if path.exists() {
            match load_params(&mut net, &path) {
                Ok(()) => return net,
                Err(err) => {
                    // Corrupt or stale cache: retrain from scratch.
                    eprintln!("[da-core] discarding bad cache {}: {err}", path.display());
                    net = build();
                }
            }
        }
        fit(&mut net);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(err) = save_params(&net, &path) {
            eprintln!("[da-core] could not persist {}: {err}", path.display());
        }
        net
    }

    /// The SynthDigits training set for `budget`.
    pub fn digits_train(&self, budget: &Budget) -> Dataset {
        synth_digits(budget.digits_train, seeds::TRAIN_DATA)
    }

    /// A SynthDigits test set of `n` examples (disjoint seed stream).
    pub fn digits_test(&self, n: usize) -> Dataset {
        synth_digits(n, seeds::TEST_DATA)
    }

    /// The SynthObjects training set for `budget`.
    pub fn objects_train(&self, budget: &Budget) -> Dataset {
        synth_objects(budget.objects_train, seeds::TRAIN_DATA)
    }

    /// A SynthObjects test set of `n` examples.
    pub fn objects_test(&self, n: usize) -> Dataset {
        synth_objects(n, seeds::TEST_DATA)
    }

    /// The trained exact LeNet-5 (paper §5.1: Adam).
    pub fn lenet(&self, budget: &Budget) -> Network {
        self.train_or_load(
            "lenet5",
            budget,
            || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seeds::INIT);
                lenet5(10, &mut rng)
            },
            |net| {
                let ds = self.digits_train(budget);
                let config = TrainConfig {
                    epochs: budget.lenet_epochs,
                    batch_size: 32,
                    seed: seeds::TRAIN,
                    verbose: false,
                };
                train(net, &ds.images, &ds.labels, &config, &mut Adam::new(1e-3));
            },
        )
    }

    /// The trained exact AlexNet (paper §5.1: SGD, lr 0.01).
    pub fn alexnet(&self, budget: &Budget) -> Network {
        self.train_or_load(
            "alexnet",
            budget,
            || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seeds::INIT);
                alexnet_cifar(10, &mut rng)
            },
            |net| {
                let ds = self.objects_train(budget);
                let config = TrainConfig {
                    epochs: budget.alexnet_epochs,
                    batch_size: 32,
                    seed: seeds::TRAIN,
                    verbose: false,
                };
                train(net, &ds.images, &ds.labels, &config, &mut Sgd::with_momentum(0.01, 0.9));
            },
        )
    }

    /// A trained Defensive Quantization ConvNet (Appendix B) in the given
    /// mode at 4 bits (the paper's DQ configuration).
    pub fn dq_convnet(&self, budget: &Budget, mode: DqMode) -> Network {
        let name = match mode {
            DqMode::Float => "dq-float",
            DqMode::WeightOnly => "dq-weight",
            DqMode::Full => "dq-full",
        };
        self.train_or_load(
            name,
            budget,
            || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seeds::INIT);
                dq_convnet(10, mode, 4, &mut rng)
            },
            |net| {
                let ds = self.objects_train(budget);
                let config = TrainConfig {
                    epochs: budget.alexnet_epochs,
                    batch_size: 32,
                    seed: seeds::TRAIN,
                    verbose: false,
                };
                train(net, &ds.images, &ds.labels, &config, &mut Adam::new(1e-3));
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> ModelCache {
        let dir = std::env::temp_dir().join(format!("da-core-cache-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        ModelCache::new(dir)
    }

    #[test]
    fn lenet_trains_once_and_reloads_identically() {
        let cache = temp_cache("lenet");
        let budget = Budget::smoke();
        let a = cache.lenet(&budget);
        let path = cache.model_path("lenet5", &budget);
        assert!(path.exists(), "weights must be persisted");
        let b = cache.lenet(&budget);
        let x = cache.digits_test(4).images;
        assert_eq!(a.logits(&x), b.logits(&x), "reload must be exact");
    }

    #[test]
    fn corrupt_cache_retrains_instead_of_failing() {
        let cache = temp_cache("corrupt");
        let budget = Budget::smoke();
        let a = cache.lenet(&budget);
        let path = cache.model_path("lenet5", &budget);
        std::fs::write(&path, b"garbage").expect("corrupt the cache");
        let b = cache.lenet(&budget);
        let x = cache.digits_test(4).images;
        // Retrained deterministically from the same seeds: same weights.
        assert_eq!(a.logits(&x), b.logits(&x));
    }

    #[test]
    fn trained_lenet_reaches_sane_accuracy_even_on_smoke_budget() {
        let cache = temp_cache("acc");
        let budget = Budget::smoke();
        let net = cache.lenet(&budget);
        let test = cache.digits_test(200);
        let acc = da_nn::train::evaluate_accuracy(&net, &test.images, &test.labels, 128);
        assert!(acc > 0.7, "smoke LeNet accuracy {acc}");
    }

    #[test]
    fn train_and_test_sets_are_disjoint_streams() {
        let cache = temp_cache("disjoint");
        let budget = Budget::smoke();
        let train = cache.digits_train(&budget);
        let test = cache.digits_test(budget.digits_train);
        assert_ne!(train.images, test.images);
    }
}
