//! White-box attacks on the approximate classifier itself: paper Figures
//! 8–11 (§5.3).
//!
//! The attacker has full knowledge of the DA classifier, including its
//! approximate gradients (BPDA/straight-through, crate docs of `da-nn`).
//! Robustness here means a higher perturbation *price*: the L2 / MSE / PSNR
//! of successful adversarials against DA versus the exact classifier.

use da_arith::MultiplierKind;
use da_attacks::gradient::{CarliniWagnerL2, DeepFool};
use da_attacks::{metrics, Attack, TargetModel};
use da_nn::Network;

use crate::experiments::transfer::with_multiplier;
use crate::{Budget, ModelCache};

/// Per-sample perturbation measurements for one attack against one model.
#[derive(Debug, Clone, Default)]
pub struct PerturbationSeries {
    /// L2 distances of successful adversarials (Figures 8/9 bars).
    pub l2: Vec<f64>,
    /// MSE of successful adversarials (Figures 10/11).
    pub mse: Vec<f64>,
    /// PSNR (dB) of successful adversarials (Figures 10/11).
    pub psnr: Vec<f64>,
    /// Samples where the attack failed to find an adversarial.
    pub failures: usize,
}

impl PerturbationSeries {
    fn mean(values: &[f64]) -> f64 {
        if values.is_empty() {
            f64::NAN
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// Mean L2 over successful samples.
    pub fn mean_l2(&self) -> f64 {
        Self::mean(&self.l2)
    }

    /// Mean MSE over successful samples.
    pub fn mean_mse(&self) -> f64 {
        Self::mean(&self.mse)
    }

    /// Mean PSNR over successful samples.
    pub fn mean_psnr(&self) -> f64 {
        Self::mean(&self.psnr)
    }
}

/// Figures 8–11 for one attack: exact-model series vs DA-model series.
#[derive(Debug, Clone)]
pub struct WhiteboxReport {
    /// Attack name ("C&W" or "DF").
    pub attack: String,
    /// Measurements against the exact classifier.
    pub exact: PerturbationSeries,
    /// Measurements against the DA classifier (BPDA gradients).
    pub approx: PerturbationSeries,
}

impl WhiteboxReport {
    /// Mean extra L2 the attacker pays against DA (paper: 5.12 for DF, 1.23
    /// for C&W).
    pub fn l2_gap(&self) -> f64 {
        self.approx.mean_l2() - self.exact.mean_l2()
    }

    /// PSNR degradation in dB (paper: ~4 dB C&W, ~7.8 dB DF).
    pub fn psnr_drop(&self) -> f64 {
        self.exact.mean_psnr() - self.approx.mean_psnr()
    }

    /// MSE ratio approx/exact (paper: ~6× C&W, ~3× DF).
    pub fn mse_ratio(&self) -> f64 {
        self.approx.mean_mse() / self.exact.mean_mse()
    }
}

impl std::fmt::Display for WhiteboxReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "White-box {} (Figures 8-11): {} exact / {} DA successes",
            self.attack,
            self.exact.l2.len(),
            self.approx.l2.len()
        )?;
        writeln!(
            f,
            "  mean L2    exact {:>7.3}   DA {:>7.3}   (gap {:+.3})",
            self.exact.mean_l2(),
            self.approx.mean_l2(),
            self.l2_gap()
        )?;
        writeln!(
            f,
            "  mean MSE   exact {:>7.5}  DA {:>7.5}  (ratio {:.2}x)",
            self.exact.mean_mse(),
            self.approx.mean_mse(),
            self.mse_ratio()
        )?;
        writeln!(
            f,
            "  mean PSNR  exact {:>6.2} dB  DA {:>6.2} dB  (drop {:.2} dB)",
            self.exact.mean_psnr(),
            self.approx.mean_psnr(),
            self.psnr_drop()
        )
    }
}

fn attack_series(
    attack: &dyn Attack,
    model: &Network,
    images: &da_tensor::Tensor,
    labels: &[usize],
) -> PerturbationSeries {
    let mut series = PerturbationSeries::default();
    for i in 0..labels.len() {
        let x = images.batch_item(i);
        let label = labels[i];
        if TargetModel::predict(model, &x) != label {
            continue;
        }
        let adv = attack.run(model, &x, label);
        if TargetModel::predict(model, &adv) == label {
            series.failures += 1;
            continue;
        }
        series.l2.push(metrics::l2(&adv, &x));
        series.mse.push(metrics::mse(&adv, &x));
        series.psnr.push(metrics::psnr(&adv, &x));
    }
    series
}

/// Run one white-box attack against both classifiers.
pub fn whitebox_report(attack: &dyn Attack, cache: &ModelCache, budget: &Budget) -> WhiteboxReport {
    let exact = cache.lenet(budget);
    let approx = with_multiplier(cache.lenet(budget), MultiplierKind::AxFpm);
    let ds = cache.digits_test(budget.whitebox_samples.max(2) * 2);
    let eval = ds.balanced_subset((budget.whitebox_samples / 10).max(1));

    WhiteboxReport {
        attack: attack.name().to_string(),
        exact: attack_series(attack, &exact, &eval.images, &eval.labels),
        approx: attack_series(attack, &approx, &eval.images, &eval.labels),
    }
}

/// **Figures 8 & 10** — DeepFool against exact vs DA.
pub fn fig8_fig10(cache: &ModelCache, budget: &Budget) -> WhiteboxReport {
    whitebox_report(&DeepFool::new(40, 0.02), cache, budget)
}

/// **Figures 9 & 11** — C&W-L2 against exact vs DA.
pub fn fig9_fig11(cache: &ModelCache, budget: &Budget) -> WhiteboxReport {
    whitebox_report(&CarliniWagnerL2::standard(), cache, budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deepfool_whitebox_smoke() {
        let cache = ModelCache::new(std::env::temp_dir().join("da-core-whitebox"));
        let report = fig8_fig10(&cache, &Budget::smoke());
        assert!(!report.exact.l2.is_empty(), "DeepFool must fool the exact model");
        for &d in &report.exact.l2 {
            assert!(d > 0.0 && d.is_finite());
        }
        let text = report.to_string();
        assert!(text.contains("mean L2") && text.contains("PSNR"), "{text}");
    }
}
