//! Transferability experiments: paper Tables 2, 3, and 10.
//!
//! Protocol (Figure 5): craft adversarial examples against the *exact*
//! classifier, then replay each successful one against approximate targets
//! that share the same weights and architecture but different multipliers.

use std::sync::Arc;

use da_arith::MultiplierKind;
use da_attacks::{Attack, ServedModel, TargetModel};
use da_datasets::Dataset;
use da_nn::Network;

use crate::{Budget, ModelCache};

/// A transferability table: one row per attack, one success-rate column per
/// target model.
#[derive(Debug, Clone)]
pub struct TransferTable {
    /// Table title (e.g. `"Table 2: ..."`).
    pub title: String,
    /// Target-column names.
    pub targets: Vec<String>,
    /// Rows: attack name, source success rate, transfer rate per target.
    pub rows: Vec<TransferRow>,
    /// Images attacked per row.
    pub samples: usize,
}

/// One row of a [`TransferTable`].
#[derive(Debug, Clone)]
pub struct TransferRow {
    /// Attack name (paper row label).
    pub attack: String,
    /// Success rate on the source (exact) model.
    pub source_rate: f64,
    /// Success rate of the transferred examples on each target.
    pub transfer_rates: Vec<f64>,
}

impl std::fmt::Display for TransferTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} ({} samples/row)", self.title, self.samples)?;
        write!(f, "{:<8} {:>10}", "Attack", "Exact")?;
        for t in &self.targets {
            write!(f, " {t:>14}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:<8} {:>9.0}%", row.attack, row.source_rate * 100.0)?;
            for r in &row.transfer_rates {
                write!(f, " {:>13.0}%", r * 100.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl TransferTable {
    /// Mean transfer rate for target column `idx` — the paper's headline
    /// "average robustness improvement" is `1 − this`.
    pub fn mean_transfer_rate(&self, idx: usize) -> f64 {
        let n = self.rows.len().max(1) as f64;
        self.rows.iter().map(|r| r.transfer_rates[idx]).sum::<f64>() / n
    }
}

/// Craft adversarials on `source` and replay on every target (each sharing
/// the source's weights, differing in multiplier).
///
/// All decision queries — the clean filter, per-step attack queries, and
/// the batched replays — route through `da_nn::serve` batch servers
/// ([`ServedModel`], one per model) when the layer stacks compile; this is
/// the same cross-request micro-batching path production serving uses, and
/// it is bit-identical to direct inference, so the table's numbers do not
/// depend on the routing. Uncompilable stacks fall back to the per-layer
/// path.
pub fn multi_target_transfer(
    title: impl Into<String>,
    attacks: &[Box<dyn Attack>],
    source: &Network,
    targets: &[(String, &Network)],
    dataset: &Dataset,
    samples: usize,
) -> TransferTable {
    let eval = dataset.balanced_subset((samples / dataset.classes).max(1));
    let mut rows = Vec::with_capacity(attacks.len());

    let served_source = ServedModel::new(source);
    let source_model: &dyn TargetModel = match &served_source {
        Some(s) => s,
        None => source,
    };
    let served_targets: Vec<Option<ServedModel>> =
        targets.iter().map(|(_, net)| ServedModel::new(net)).collect();
    let target_models: Vec<&dyn TargetModel> = served_targets
        .iter()
        .zip(targets)
        .map(|(served, (_, net))| match served {
            Some(s) => s as &dyn TargetModel,
            None => *net as &dyn TargetModel,
        })
        .collect();

    // One batched clean-filter pass; identical for every attack row.
    let clean_predictions = source_model.predict_batch(&eval.images);

    for attack in attacks {
        let mut attempted = 0usize;
        let mut crafted: Vec<(da_tensor::Tensor, usize)> = Vec::new();
        for i in 0..eval.len() {
            let x = eval.images.batch_item(i);
            let label = eval.labels[i];
            if clean_predictions[i] != label {
                continue;
            }
            attempted += 1;
            crafted.push((attack.run(source_model, &x, label), label));
        }

        // Replay the adversarials on the source as one coalesced batch,
        // then only the source-fooling subset on each target (the rest
        // cannot transfer by definition).
        let mut source_hits = 0usize;
        let mut target_hits = vec![0usize; targets.len()];
        if !crafted.is_empty() {
            let (advs, labels): (Vec<da_tensor::Tensor>, Vec<usize>) = crafted.into_iter().unzip();
            let source_replay = source_model.predict_batch(&da_tensor::Tensor::stack(&advs));
            let fooling: Vec<da_tensor::Tensor> = advs
                .iter()
                .zip(&labels)
                .zip(&source_replay)
                .filter(|((_, label), pred)| *pred != *label)
                .map(|((adv, _), _)| adv.clone())
                .collect();
            let fooling_labels: Vec<usize> = labels
                .iter()
                .zip(&source_replay)
                .filter(|(label, pred)| *pred != *label)
                .map(|(&label, _)| label)
                .collect();
            source_hits = fooling.len();
            if !fooling.is_empty() {
                let fooling_batch = da_tensor::Tensor::stack(&fooling);
                for (t, model) in target_models.iter().enumerate() {
                    let replay = model.predict_batch(&fooling_batch);
                    target_hits[t] =
                        replay.iter().zip(&fooling_labels).filter(|(p, l)| p != l).count();
                }
            }
        }
        rows.push(TransferRow {
            attack: attack.name().to_string(),
            source_rate: if attempted == 0 { 0.0 } else { source_hits as f64 / attempted as f64 },
            transfer_rates: target_hits
                .iter()
                .map(|&h| if source_hits == 0 { 0.0 } else { h as f64 / source_hits as f64 })
                .collect(),
        });
    }

    TransferTable {
        title: title.into(),
        targets: targets.iter().map(|(n, _)| n.clone()).collect(),
        rows,
        samples: eval.len(),
    }
}

/// A cached backbone re-instantiated with an approximate multiplier.
pub fn with_multiplier(mut net: Network, kind: MultiplierKind) -> Network {
    let m: Arc<dyn da_arith::Multiplier> = kind.build();
    net.set_multiplier(Some(m));
    net
}

/// **Table 2** — attack transferability, exact LeNet-5 → Ax-FPM LeNet-5 on
/// SynthDigits.
pub fn table2(cache: &ModelCache, budget: &Budget) -> TransferTable {
    let source = cache.lenet(budget);
    let target = with_multiplier(cache.lenet(budget), MultiplierKind::AxFpm);
    let ds = cache.digits_test(budget.transfer_samples.max(10) * 2);
    multi_target_transfer(
        "Table 2: attack transferability success rates (SynthDigits / LeNet-5)",
        &crate::suites::mnist_suite(2),
        &source,
        &[("Approximate".to_string(), &target)],
        &ds,
        budget.transfer_samples,
    )
}

/// **Table 3** — attack transferability, exact AlexNet → Ax-FPM AlexNet on
/// SynthObjects.
pub fn table3(cache: &ModelCache, budget: &Budget) -> TransferTable {
    let source = cache.alexnet(budget);
    let target = with_multiplier(cache.alexnet(budget), MultiplierKind::AxFpm);
    let ds = cache.objects_test(budget.transfer_samples.max(10) * 2);
    multi_target_transfer(
        "Table 3: attack transferability success rates (SynthObjects / AlexNet)",
        &crate::suites::cifar_suite(3),
        &source,
        &[("Approximate".to_string(), &target)],
        &ds,
        budget.transfer_samples,
    )
}

/// **Table 10** — transferability of exact-LeNet adversarials to HEAP-based
/// and Ax-FPM-based LeNet-5 (Appendix A).
pub fn table10(cache: &ModelCache, budget: &Budget) -> TransferTable {
    let source = cache.lenet(budget);
    let heap = with_multiplier(cache.lenet(budget), MultiplierKind::Heap);
    let ax = with_multiplier(cache.lenet(budget), MultiplierKind::AxFpm);
    let ds = cache.digits_test(budget.transfer_samples.max(10) * 2);
    multi_target_transfer(
        "Table 10: attack transferability, HEAP-based vs Ax-FPM-based (SynthDigits)",
        &crate::suites::mnist_suite(10),
        &source,
        &[("HEAP-based".to_string(), &heap), ("Ax-FPM-based".to_string(), &ax)],
        &ds,
        budget.transfer_samples,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(tag: &str) -> ModelCache {
        ModelCache::new(std::env::temp_dir().join(format!("da-core-transfer-{tag}")))
    }

    #[test]
    fn table2_smoke_has_paper_shape() {
        let table = table2(&cache("t2"), &Budget::smoke());
        assert_eq!(table.rows.len(), 8);
        assert_eq!(table.targets, ["Approximate"]);
        for row in &table.rows {
            assert!(
                row.transfer_rates[0] <= row.source_rate + 1e-9,
                "{}: transfer cannot exceed source",
                row.attack
            );
        }
        // The defense's core claim, in aggregate: most adversarials do not
        // transfer to the approximate classifier.
        assert!(
            table.mean_transfer_rate(0) < 0.8,
            "mean transfer {} too high",
            table.mean_transfer_rate(0)
        );
        let rendered = table.to_string();
        assert!(rendered.contains("FGSM") && rendered.contains("HSJ"), "{rendered}");
    }

    #[test]
    fn with_multiplier_installs_the_kind() {
        let net = with_multiplier(cache("wm").lenet(&Budget::smoke()), MultiplierKind::Heap);
        assert_eq!(net.multiplier().map(|m| m.name()), Some("heap"));
    }
}
