//! Black-box (substitute model) attacks: paper Table 4 / Figure 6.
//!
//! The adversary queries the victim for labels, trains a substitute LeNet-5
//! on those labels, crafts adversarials on the substitute, and replays them
//! on the victim. The experiment runs the pipeline twice — once against the
//! exact victim, once against the Ax-FPM victim — and compares success rates.

use rand::SeedableRng;

use da_arith::MultiplierKind;
use da_attacks::substitute::{train_substitute, SubstituteConfig};
use da_attacks::{Attack, TargetModel};
use da_datasets::digits::synth_digits;
use da_nn::zoo::lenet5;
use da_nn::Network;

use crate::experiments::transfer::with_multiplier;
use crate::{Budget, ModelCache};

/// Table 4: black-box success rates against the exact and approximate
/// victims.
#[derive(Debug, Clone)]
pub struct BlackboxTable {
    /// Rows: attack, success on exact victim, success on DA victim.
    pub rows: Vec<BlackboxRow>,
    /// Substitute/victim agreement rates `(exact, approximate)`.
    pub substitute_agreement: (f64, f64),
    /// Images attacked per row.
    pub samples: usize,
}

/// One row of [`BlackboxTable`].
#[derive(Debug, Clone)]
pub struct BlackboxRow {
    /// Attack name.
    pub attack: String,
    /// Victim success rate when the victim is the exact classifier.
    pub exact_rate: f64,
    /// Victim success rate when the victim is the DA classifier.
    pub approx_rate: f64,
}

impl std::fmt::Display for BlackboxTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 4: black-box attack success rates (SynthDigits, {} samples/row; substitute agreement exact {:.0}% / DA {:.0}%)",
            self.samples,
            self.substitute_agreement.0 * 100.0,
            self.substitute_agreement.1 * 100.0
        )?;
        writeln!(f, "{:<8} {:>14} {:>20}", "Attack", "Exact LeNet-5", "Approximate LeNet-5")?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<8} {:>13.0}% {:>19.0}%",
                row.attack,
                row.exact_rate * 100.0,
                row.approx_rate * 100.0
            )?;
        }
        Ok(())
    }
}

/// Run the black-box pipeline against one victim; returns the substitute
/// agreement and per-attack victim success rates.
fn pipeline(
    victim: &Network,
    attacks: &[Box<dyn Attack>],
    budget: &Budget,
    seed: u64,
) -> (f64, Vec<f64>) {
    // The adversary's own unlabeled data (a fresh stream — it does not know
    // the victim's training set).
    let queries = synth_digits(budget.substitute_queries, 0xB1AC_C0DE ^ seed);
    let mut substitute = {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        lenet5(10, &mut rng)
    };
    let config =
        SubstituteConfig { epochs: budget.lenet_epochs.max(2), batch_size: 32, lr: 1e-3, seed };
    let agreement = train_substitute(&mut substitute, victim, &queries.images, &config) as f64;

    let eval = synth_digits(budget.transfer_samples.max(10), EVAL_SEED ^ seed);
    let mut rates = Vec::with_capacity(attacks.len());
    for attack in attacks {
        let mut crafted = 0usize;
        let mut hits = 0usize;
        for i in 0..eval.len() {
            let x = eval.images.batch_item(i);
            let label = eval.labels[i];
            if TargetModel::predict(victim, &x) != label {
                continue;
            }
            let adv = attack.run(&substitute, &x, label);
            if TargetModel::predict(&substitute, &adv) == label {
                continue; // attack failed even on the proxy
            }
            crafted += 1;
            if TargetModel::predict(victim, &adv) != label {
                hits += 1;
            }
        }
        rates.push(if crafted == 0 { 0.0 } else { hits as f64 / crafted as f64 });
    }
    (agreement, rates)
}

/// **Table 4** — the full black-box comparison.
pub fn table4(cache: &ModelCache, budget: &Budget) -> BlackboxTable {
    let exact_victim = cache.lenet(budget);
    let approx_victim = with_multiplier(cache.lenet(budget), MultiplierKind::AxFpm);
    let attacks = crate::suites::mnist_suite(4);

    let (agree_exact, exact_rates) = pipeline(&exact_victim, &attacks, budget, 44);
    let (agree_approx, approx_rates) = pipeline(&approx_victim, &attacks, budget, 45);

    BlackboxTable {
        rows: attacks
            .iter()
            .zip(exact_rates.iter().zip(&approx_rates))
            .map(|(a, (&e, &x))| BlackboxRow {
                attack: a.name().to_string(),
                exact_rate: e,
                approx_rate: x,
            })
            .collect(),
        substitute_agreement: (agree_exact, agree_approx),
        samples: budget.transfer_samples.max(10),
    }
}

/// Seed stream for the black-box evaluation images.
const EVAL_SEED: u64 = 0xE7A1_5EED;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_smoke_shape() {
        let cache = ModelCache::new(std::env::temp_dir().join("da-core-blackbox"));
        let table = table4(&cache, &Budget::smoke());
        assert_eq!(table.rows.len(), 8);
        for row in &table.rows {
            assert!((0.0..=1.0).contains(&row.exact_rate));
            assert!((0.0..=1.0).contains(&row.approx_rate));
        }
        assert!(table.to_string().contains("black-box"));
    }
}
