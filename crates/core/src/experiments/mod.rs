//! One runner per table/figure of the paper's evaluation (index in
//! DESIGN.md §5 and EXPERIMENTS.md).

pub mod accuracy;
pub mod blackbox;
pub mod confidence;
pub mod dq;
pub mod energy;
pub mod fig4;
pub mod heatmap;
pub mod profiles;
pub mod transfer;
pub mod whitebox;
