//! Clean-accuracy and multiplier-error experiments: paper Tables 6 and 8.

use da_arith::metrics::{error_stats, ErrorStats};
use da_arith::MultiplierKind;
use da_nn::train::evaluate_accuracy;
use da_nn::zoo::DqMode;

use crate::experiments::transfer::with_multiplier;
use crate::{Budget, ModelCache};

/// **Table 6** — clean accuracy of every model variant on both datasets.
#[derive(Debug, Clone)]
pub struct AccuracyTable {
    /// Rows: variant name, SynthDigits accuracy (if applicable), SynthObjects
    /// accuracy.
    pub rows: Vec<(String, Option<f64>, Option<f64>)>,
    /// Test-set sizes `(digits, objects)`.
    pub test_sizes: (usize, usize),
}

impl std::fmt::Display for AccuracyTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 6: clean accuracy (SynthDigits n={}, SynthObjects n={})",
            self.test_sizes.0, self.test_sizes.1
        )?;
        writeln!(f, "{:<26} {:>12} {:>12}", "Used multiplier", "SynthDigits", "SynthObjects")?;
        for (name, digits, objects) in &self.rows {
            let fmt_cell = |v: &Option<f64>| match v {
                Some(a) => format!("{:.2}%", a * 100.0),
                None => "-".to_string(),
            };
            writeln!(f, "{:<26} {:>12} {:>12}", name, fmt_cell(digits), fmt_cell(objects))?;
        }
        Ok(())
    }
}

/// **Table 6** runner.
pub fn table6(cache: &ModelCache, budget: &Budget) -> AccuracyTable {
    let digits_test = cache.digits_test(budget.transfer_samples.max(50) * 5);
    let objects_test = cache.objects_test(budget.transfer_samples.max(50) * 5);

    let mut rows = Vec::new();
    // LeNet/AlexNet under multiplier swaps.
    for (label, kind) in [
        ("Float32", None),
        ("Approximate (DA)", Some(MultiplierKind::AxFpm)),
        ("Bfloat16", Some(MultiplierKind::Bfloat16)),
    ] {
        let lenet = match kind {
            Some(k) => with_multiplier(cache.lenet(budget), k),
            None => cache.lenet(budget),
        };
        let alexnet = match kind {
            Some(k) => with_multiplier(cache.alexnet(budget), k),
            None => cache.alexnet(budget),
        };
        rows.push((
            label.to_string(),
            Some(evaluate_accuracy(&lenet, &digits_test.images, &digits_test.labels, 64) as f64),
            Some(
                evaluate_accuracy(&alexnet, &objects_test.images, &objects_test.labels, 64) as f64,
            ),
        ));
    }
    // DQ models (CIFAR-only in the paper).
    for (label, mode) in
        [("Fully quantized", DqMode::Full), ("Weight-only quantized", DqMode::WeightOnly)]
    {
        let net = cache.dq_convnet(budget, mode);
        rows.push((
            label.to_string(),
            None,
            Some(evaluate_accuracy(&net, &objects_test.images, &objects_test.labels, 64) as f64),
        ));
    }
    // Order rows like the paper: Float32, DA, DQ-full, DQ-weight, Bfloat16.
    rows.swap(2, 4);

    AccuracyTable { rows, test_sizes: (digits_test.len(), objects_test.len()) }
}

/// **Table 8** — multiplier error metrics plus LeNet-5 accuracy per
/// multiplier (Appendix A).
#[derive(Debug, Clone)]
pub struct MredTable {
    /// Rows: multiplier name, CNN accuracy, multiplier error stats.
    pub rows: Vec<(String, f64, ErrorStats)>,
    /// Test-set size behind the accuracy column.
    pub test_size: usize,
}

impl std::fmt::Display for MredTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 8: multiplier accuracy metrics (SynthDigits n={})", self.test_size)?;
        writeln!(
            f,
            "{:<18} {:>12} {:>8} {:>8} {:>10}",
            "Multiplier", "CNN accuracy", "MRED", "NMED", "inflation"
        )?;
        for (name, acc, stats) in &self.rows {
            writeln!(
                f,
                "{:<18} {:>11.2}% {:>8.3} {:>8.3} {:>9.1}%",
                name,
                acc * 100.0,
                stats.mred,
                stats.nmed,
                stats.inflation_rate * 100.0
            )?;
        }
        Ok(())
    }
}

/// **Table 8** runner.
pub fn table8(cache: &ModelCache, budget: &Budget) -> MredTable {
    let test = cache.digits_test(budget.transfer_samples.max(50) * 5);
    let mut rows = Vec::new();
    for (label, kind) in [
        ("Exact multiplier", MultiplierKind::Exact),
        ("HEAP", MultiplierKind::Heap),
        ("Ax-FPM", MultiplierKind::AxFpm),
    ] {
        let net = if kind == MultiplierKind::Exact {
            cache.lenet(budget)
        } else {
            with_multiplier(cache.lenet(budget), kind)
        };
        let acc = evaluate_accuracy(&net, &test.images, &test.labels, 64) as f64;
        let stats = error_stats(&*kind.build(), budget.metric_samples, 8, (0.0, 1.0));
        rows.push((label.to_string(), acc, stats));
    }
    MredTable { rows, test_size: test.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(tag: &str) -> ModelCache {
        ModelCache::new(std::env::temp_dir().join(format!("da-core-accuracy-{tag}")))
    }

    #[test]
    fn table8_smoke_shape() {
        let table = table8(&cache("t8"), &Budget::smoke());
        assert_eq!(table.rows.len(), 3);
        let exact = &table.rows[0];
        let heap = &table.rows[1];
        let ax = &table.rows[2];
        assert_eq!(exact.2.mred, 0.0);
        assert!(heap.2.mred < ax.2.mred, "HEAP must be more accurate than Ax-FPM");
        // The paper's negligible-accuracy-drop claim, loosely: the DA model
        // stays within a reasonable band of the exact model.
        assert!(ax.1 > exact.1 - 0.25, "DA accuracy collapsed: {} vs {}", ax.1, exact.1);
        assert!(table.to_string().contains("Ax-FPM"));
    }
}
