//! Convolution vs input/filter similarity: paper Figure 4 (§4.2).
//!
//! Six inputs of increasing similarity to a fixed kernel are convolved with
//! exact and Ax-FPM multipliers. The paper's observation: the approximate
//! result exceeds the exact one, and the gap grows with similarity — the
//! mechanism behind the feature-highlighting effect.

use rand::SeedableRng;

use da_arith::{Multiplier, MultiplierKind};
use da_tensor::Tensor;

/// One similarity level of the Figure-4 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityPoint {
    /// Blend factor toward the kernel (0 = noise, 1 = the kernel itself).
    pub similarity: f32,
    /// Exact convolution response.
    pub exact: f32,
    /// Ax-FPM convolution response.
    pub approx: f32,
}

/// The Figure-4 series.
#[derive(Debug, Clone)]
pub struct SimilaritySeries {
    /// Points in increasing similarity order.
    pub points: Vec<SimilarityPoint>,
}

impl SimilaritySeries {
    /// `true` if the approx−exact gap grows along the series as a trend:
    /// the most-similar input's gap is substantially larger than the
    /// least-similar input's (the noise is discontinuous, so adjacent levels
    /// may jitter — the paper's Figure 4 shows the same).
    pub fn gap_grows(&self) -> bool {
        let first = self.points.first().map(|p| p.approx - p.exact).unwrap_or(0.0);
        let last = self.points.last().map(|p| p.approx - p.exact).unwrap_or(0.0);
        last > first * 1.2
    }
}

impl std::fmt::Display for SimilaritySeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 4: convolution response vs input/filter similarity")?;
        writeln!(f, "{:>10} {:>10} {:>10} {:>8}", "similarity", "exact", "Ax-FPM", "gap")?;
        for p in &self.points {
            writeln!(
                f,
                "{:>10.2} {:>10.4} {:>10.4} {:>8.4}",
                p.similarity,
                p.exact,
                p.approx,
                p.approx - p.exact
            )?;
        }
        Ok(())
    }
}

/// Single-window convolution (dot product) through a multiplier, on the
/// batched backend (bit-identical to the scalar multiply-and-sum loop).
fn convolve(m: &dyn Multiplier, kernel: &Tensor, input: &Tensor) -> f32 {
    m.dot_accumulate(kernel.data(), input.data())
}

/// **Figure 4** — run the experiment with `levels` similarity steps.
///
/// # Panics
///
/// Panics if `levels < 2`.
pub fn fig4(levels: usize) -> SimilaritySeries {
    assert!(levels >= 2, "need at least two similarity levels");
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    // A fixed 5×5 positive kernel (edge-like pattern) as in the paper's setup.
    let kernel = Tensor::rand_uniform(&[5, 5], 0.2, 1.0, &mut rng);
    let noise = Tensor::rand_uniform(&[5, 5], 0.0, 0.4, &mut rng);

    let exact = MultiplierKind::Exact.build();
    let ax = MultiplierKind::AxFpm.build();

    let points = (0..levels)
        .map(|i| {
            let alpha = i as f32 / (levels - 1) as f32;
            let input = noise.zip_map(&kernel, |n, k| (1.0 - alpha) * n + alpha * k);
            SimilarityPoint {
                similarity: alpha,
                exact: convolve(&*exact, &kernel, &input),
                approx: convolve(&*ax, &kernel, &input),
            }
        })
        .collect();
    SimilaritySeries { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approximate_convolution_exceeds_exact_and_gap_grows() {
        let series = fig4(6);
        assert_eq!(series.points.len(), 6);
        for p in &series.points {
            assert!(p.approx >= p.exact, "inflation must hold at {}", p.similarity);
        }
        assert!(series.gap_grows(), "gap must grow with similarity: {series}");
        // Similar inputs respond more strongly than dissimilar ones.
        let first = &series.points[0];
        let last = series.points.last().expect("points");
        assert!(last.exact > first.exact);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_level() {
        let _ = fig4(1);
    }
}
