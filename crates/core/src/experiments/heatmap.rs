//! Final-convolution-layer feature maps: paper Figure 16 (Appendix A).
//!
//! For the same trained weights and the same input, compare the final conv
//! layer's feature maps under exact, Ax-FPM, and HEAP multipliers. The paper
//! shows Ax-FPM boosting feature scores and HEAP lowering them.

use da_arith::MultiplierKind;
use da_tensor::Tensor;

use crate::experiments::transfer::with_multiplier;
use crate::{Budget, ModelCache};

/// Feature-map statistics for one multiplier.
#[derive(Debug, Clone)]
pub struct FeatureMapStats {
    /// Multiplier name.
    pub multiplier: String,
    /// Mean activation per output channel of the final conv layer.
    pub channel_means: Vec<f32>,
    /// Mean over all channels.
    pub overall_mean: f32,
}

/// Figure 16: feature-map comparison across multipliers.
#[derive(Debug, Clone)]
pub struct HeatmapReport {
    /// Exact / Ax-FPM / HEAP statistics over the same input.
    pub stats: Vec<FeatureMapStats>,
}

impl HeatmapReport {
    /// Overall-mean ratio of multiplier row `idx` versus the exact row.
    pub fn mean_ratio(&self, idx: usize) -> f32 {
        self.stats[idx].overall_mean / self.stats[0].overall_mean
    }
}

impl std::fmt::Display for HeatmapReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 16: final conv layer feature-map energy per multiplier")?;
        for s in &self.stats {
            write!(f, "  {:<10} mean {:>8.4} | channels:", s.multiplier, s.overall_mean)?;
            for c in &s.channel_means {
                write!(f, " {c:>7.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Index of LeNet-5's final convolution layer followed by its ReLU.
const LENET_FINAL_CONV_RELU: usize = 4;

/// **Figure 16** — run on the first correctly classified test digit.
pub fn fig16(cache: &ModelCache, budget: &Budget) -> HeatmapReport {
    let ds = cache.digits_test(10);
    let input = Tensor::stack(&[ds.images.batch_item(0)]);

    let mut stats = Vec::new();
    for (name, kind) in [
        ("Exact", None),
        ("Ax-FPM", Some(MultiplierKind::AxFpm)),
        ("HEAP", Some(MultiplierKind::Heap)),
    ] {
        let net = match kind {
            Some(k) => with_multiplier(cache.lenet(budget), k),
            None => cache.lenet(budget),
        };
        let fmap = net.activation_at(&input, LENET_FINAL_CONV_RELU);
        let (c, h, w) = (fmap.shape()[1], fmap.shape()[2], fmap.shape()[3]);
        let channel_means: Vec<f32> = (0..c)
            .map(|ch| {
                fmap.data()[ch * h * w..(ch + 1) * h * w].iter().sum::<f32>() / (h * w) as f32
            })
            .collect();
        let overall_mean = channel_means.iter().sum::<f32>() / c as f32;
        stats.push(FeatureMapStats { multiplier: name.to_string(), channel_means, overall_mean });
    }
    HeatmapReport { stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ax_fpm_highlights_features_relative_to_exact() {
        let cache = ModelCache::new(std::env::temp_dir().join("da-core-heatmap"));
        let report = fig16(&cache, &Budget::smoke());
        assert_eq!(report.stats.len(), 3);
        assert_eq!(report.stats[0].multiplier, "Exact");
        // The paper's Figure-16 observation: Ax-FPM raises feature scores.
        assert!(report.mean_ratio(1) > 1.0, "Ax-FPM ratio {} must exceed 1", report.mean_ratio(1));
        // And HEAP sits closer to exact than Ax-FPM does.
        let heap_dev = (report.mean_ratio(2) - 1.0).abs();
        let ax_dev = (report.mean_ratio(1) - 1.0).abs();
        assert!(heap_dev <= ax_dev + 0.05, "HEAP deviates more than Ax-FPM");
        assert!(report.to_string().contains("Figure 16"));
    }
}
