//! Classification-confidence distribution: paper Figure 12 (§6).
//!
//! Confidence is `C = p[true] − max_{j≠true} p[j]` over clean inputs. The
//! paper observes that DA shifts the confidence CDF right: 74.5% of images
//! exceed 0.8 confidence under DA versus <20% under the exact classifier.

use da_arith::MultiplierKind;
use da_attacks::TargetModel;
use da_nn::loss::confidence;
use da_nn::Network;

use crate::experiments::transfer::with_multiplier;
use crate::{Budget, ModelCache};

/// Confidence samples for exact and DA classifiers over the same inputs.
#[derive(Debug, Clone)]
pub struct ConfidenceCdf {
    /// Per-image confidence under the exact classifier.
    pub exact: Vec<f32>,
    /// Per-image confidence under the DA classifier.
    pub approx: Vec<f32>,
}

impl ConfidenceCdf {
    /// Fraction of samples with confidence at least `threshold`.
    pub fn fraction_above(values: &[f32], threshold: f32) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        values.iter().filter(|&&c| c >= threshold).count() as f64 / values.len() as f64
    }

    /// Cumulative distribution sampled at `points` equally spaced confidence
    /// levels in `[-1, 1]`, as `(level, exact_cdf, approx_cdf)` triples.
    pub fn cdf(&self, points: usize) -> Vec<(f32, f64, f64)> {
        (0..=points)
            .map(|i| {
                let level = -1.0 + 2.0 * i as f32 / points as f32;
                (
                    level,
                    1.0 - Self::fraction_above(&self.exact, level),
                    1.0 - Self::fraction_above(&self.approx, level),
                )
            })
            .collect()
    }
}

impl std::fmt::Display for ConfidenceCdf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 12: confidence distribution ({} samples)", self.exact.len())?;
        writeln!(
            f,
            "  fraction with C >= 0.8:  exact {:.1}%   DA {:.1}%  (paper: <20% vs 74.5%)",
            Self::fraction_above(&self.exact, 0.8) * 100.0,
            Self::fraction_above(&self.approx, 0.8) * 100.0
        )?;
        writeln!(f, "  {:>10} {:>12} {:>12}", "C", "CDF exact", "CDF approx")?;
        for (level, e, a) in self.cdf(10) {
            writeln!(f, "  {level:>10.1} {e:>12.3} {a:>12.3}")?;
        }
        Ok(())
    }
}

fn confidences(model: &Network, images: &da_tensor::Tensor, labels: &[usize]) -> Vec<f32> {
    (0..labels.len())
        .map(|i| {
            let probs = TargetModel::probabilities(model, &images.batch_item(i));
            confidence(&probs, labels[i])
        })
        .collect()
}

/// **Figure 12** — the confidence CDF comparison on balanced clean samples.
pub fn fig12(cache: &ModelCache, budget: &Budget) -> ConfidenceCdf {
    let exact = cache.lenet(budget);
    let approx = with_multiplier(cache.lenet(budget), MultiplierKind::AxFpm);
    let ds = cache.digits_test(budget.confidence_samples.max(10) * 2);
    let eval = ds.balanced_subset((budget.confidence_samples / 10).max(1));
    ConfidenceCdf {
        exact: confidences(&exact, &eval.images, &eval.labels),
        approx: confidences(&approx, &eval.images, &eval.labels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_smoke_confidences_are_valid() {
        let cache = ModelCache::new(std::env::temp_dir().join("da-core-confidence"));
        let cdf = fig12(&cache, &Budget::smoke());
        assert_eq!(cdf.exact.len(), cdf.approx.len());
        assert!(!cdf.exact.is_empty());
        for &c in cdf.exact.iter().chain(&cdf.approx) {
            assert!((-1.0..=1.0).contains(&c), "confidence {c} out of range");
        }
        // CDF endpoints.
        let pts = cdf.cdf(4);
        assert!(pts.first().expect("points").1 <= pts.last().expect("points").1 + 1e-9);
        assert!((pts.last().expect("points").1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_above_is_monotone() {
        let vals = [0.1f32, 0.5, 0.9];
        assert!(
            ConfidenceCdf::fraction_above(&vals, 0.0) >= ConfidenceCdf::fraction_above(&vals, 0.6)
        );
        assert_eq!(ConfidenceCdf::fraction_above(&vals, 0.95), 0.0);
    }
}
