//! Defensive Approximation vs Defensive Quantization: paper Table 5 (§7.1).
//!
//! Adversarials crafted on the float (exact) models are replayed on:
//! the DA AlexNet (same weights, Ax-FPM multiplier), the fully quantized DQ
//! ConvNet, and the weight-only quantized DQ ConvNet. DQ adversarials are
//! crafted on the float DQ ConvNet (the deterministic reverse-engineerable
//! surrogate the paper's discussion assumes).

use da_arith::MultiplierKind;
use da_attacks::TargetModel;
use da_nn::zoo::DqMode;

use crate::experiments::transfer::with_multiplier;
use crate::{Budget, ModelCache};

/// One row of the DA-vs-DQ comparison.
#[derive(Debug, Clone)]
pub struct DqRow {
    /// Attack name.
    pub attack: String,
    /// Success on the float source models (the "Exact" column).
    pub exact_rate: f64,
    /// Transfer to the DA AlexNet.
    pub da_rate: f64,
    /// Transfer to the fully quantized DQ ConvNet.
    pub dq_full_rate: f64,
    /// Transfer to the weight-only quantized DQ ConvNet.
    pub dq_weight_rate: f64,
}

/// Table 5: DA vs DQ transferability.
#[derive(Debug, Clone)]
pub struct DqTable {
    /// One row per attack (FGSM, PGD, C&W).
    pub rows: Vec<DqRow>,
    /// Images attacked per row.
    pub samples: usize,
}

impl DqTable {
    /// Mean DA and DQ-full transfer rates — the paper's "DA is almost two
    /// times more robust" claim compares these.
    pub fn mean_rates(&self) -> (f64, f64) {
        let n = self.rows.len().max(1) as f64;
        (
            self.rows.iter().map(|r| r.da_rate).sum::<f64>() / n,
            self.rows.iter().map(|r| r.dq_full_rate).sum::<f64>() / n,
        )
    }
}

impl std::fmt::Display for DqTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 5: DA vs DQ transferability (SynthObjects, {} samples/row)",
            self.samples
        )?;
        writeln!(
            f,
            "{:<8} {:>8} {:>8} {:>10} {:>14}",
            "Attack", "Exact", "DA", "DQ: Full", "DQ: Weight-only"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>7.0}% {:>7.0}% {:>9.0}% {:>13.0}%",
                r.attack,
                r.exact_rate * 100.0,
                r.da_rate * 100.0,
                r.dq_full_rate * 100.0,
                r.dq_weight_rate * 100.0
            )?;
        }
        Ok(())
    }
}

/// **Table 5** runner.
pub fn table5(cache: &ModelCache, budget: &Budget) -> DqTable {
    let alexnet = cache.alexnet(budget);
    let da = with_multiplier(cache.alexnet(budget), MultiplierKind::AxFpm);
    let dq_float = cache.dq_convnet(budget, DqMode::Float);
    let dq_full = cache.dq_convnet(budget, DqMode::Full);
    let dq_weight = cache.dq_convnet(budget, DqMode::WeightOnly);

    let ds = cache.objects_test(budget.transfer_samples.max(10) * 2);
    let eval = ds.balanced_subset((budget.transfer_samples / ds.classes).max(1));
    let attacks = crate::suites::dq_suite(5);

    let mut rows = Vec::new();
    for attack in &attacks {
        let mut attempted = 0usize;
        let mut exact_hits = 0usize;
        let mut da_hits = 0usize;
        let mut dq_crafted = 0usize;
        let mut full_hits = 0usize;
        let mut weight_hits = 0usize;
        for i in 0..eval.len() {
            let x = eval.images.batch_item(i);
            let label = eval.labels[i];

            // DA path: craft on exact AlexNet, replay on the DA AlexNet.
            if TargetModel::predict(&alexnet, &x) == label {
                attempted += 1;
                let adv = attack.run(&alexnet, &x, label);
                if TargetModel::predict(&alexnet, &adv) != label {
                    exact_hits += 1;
                    if TargetModel::predict(&da, &adv) != label {
                        da_hits += 1;
                    }
                }
            }

            // DQ path: craft on the float DQ ConvNet, replay on quantized.
            if TargetModel::predict(&dq_float, &x) == label {
                let adv = attack.run(&dq_float, &x, label);
                if TargetModel::predict(&dq_float, &adv) != label {
                    dq_crafted += 1;
                    if TargetModel::predict(&dq_full, &adv) != label {
                        full_hits += 1;
                    }
                    if TargetModel::predict(&dq_weight, &adv) != label {
                        weight_hits += 1;
                    }
                }
            }
        }
        let rate = |hits: usize, base: usize| {
            if base == 0 {
                0.0
            } else {
                hits as f64 / base as f64
            }
        };
        rows.push(DqRow {
            attack: attack.name().to_string(),
            exact_rate: rate(exact_hits, attempted),
            da_rate: rate(da_hits, exact_hits),
            dq_full_rate: rate(full_hits, dq_crafted),
            dq_weight_rate: rate(weight_hits, dq_crafted),
        });
    }
    DqTable { rows, samples: eval.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_smoke_shape() {
        let cache = ModelCache::new(std::env::temp_dir().join("da-core-dq"));
        let table = table5(&cache, &Budget::smoke());
        assert_eq!(table.rows.len(), 3);
        for r in &table.rows {
            for v in [r.exact_rate, r.da_rate, r.dq_full_rate, r.dq_weight_rate] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        assert!(table.to_string().contains("Table 5"));
    }
}
