//! Energy and delay tables: paper Tables 7 and 9 (via the gate-census model
//! of `da-arith::energy`).

use da_arith::array::ArrayMultiplierSpec;
use da_arith::energy::{bfloat_fpm_cost, fpm_cost, mantissa_cost, CostParams};
use da_arith::heap::heap_mantissa_spec;

/// One normalized energy/delay row.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyRow {
    /// Design name.
    pub design: String,
    /// Energy normalized to the exact design.
    pub energy: f64,
    /// Delay normalized to the exact design.
    pub delay: f64,
}

/// A normalized energy/delay table.
#[derive(Debug, Clone)]
pub struct EnergyTable {
    /// Table title.
    pub title: String,
    /// Rows, exact design first.
    pub rows: Vec<EnergyRow>,
}

impl std::fmt::Display for EnergyTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{:<18} {:>15} {:>14}", "Multiplier", "Average energy", "Average delay")?;
        for row in &self.rows {
            writeln!(f, "{:<18} {:>15.3} {:>14.3}", row.design, row.energy, row.delay)?;
        }
        Ok(())
    }
}

/// **Table 7** — full binary32 FPM energy and delay, normalized to the exact
/// multiplier.
pub fn table7() -> EnergyTable {
    let params = CostParams::default();
    let exact = fpm_cost(&ArrayMultiplierSpec::exact(24), &params);
    let ax = fpm_cost(&ArrayMultiplierSpec::ax_mantissa(24), &params);
    let bf = bfloat_fpm_cost(&params);

    let (ax_e, ax_d) = ax.normalized_to(exact);
    let (bf_e, bf_d) = bf.normalized_to(exact);
    EnergyTable {
        title: "Table 7: energy and delay comparison (full FPM, normalized)".into(),
        rows: vec![
            EnergyRow { design: "Exact multiplier".into(), energy: 1.0, delay: 1.0 },
            EnergyRow { design: "Ax-FPM".into(), energy: ax_e, delay: ax_d },
            EnergyRow { design: "Bfloat16".into(), energy: bf_e, delay: bf_d },
        ],
    }
}

/// **Table 9** — 24×24 mantissa-core energy and delay, normalized to the
/// exact core (Appendix A).
pub fn table9() -> EnergyTable {
    let params = CostParams::default();
    let exact = mantissa_cost(&ArrayMultiplierSpec::exact(24), &params);
    let heap = mantissa_cost(&heap_mantissa_spec(), &params);
    let ax = mantissa_cost(&ArrayMultiplierSpec::ax_mantissa(24), &params);

    let (heap_e, heap_d) = heap.normalized_to(exact);
    let (ax_e, ax_d) = ax.normalized_to(exact);
    EnergyTable {
        title: "Table 9: 24x24 mantissa multiplier energy and delay (normalized)".into(),
        rows: vec![
            EnergyRow { design: "Exact multiplier".into(), energy: 1.0, delay: 1.0 },
            EnergyRow { design: "HEAP".into(), energy: heap_e, delay: heap_d },
            EnergyRow { design: "Ax-FPM".into(), energy: ax_e, delay: ax_d },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_matches_paper_shape() {
        let t = table7();
        assert_eq!(t.rows[0].energy, 1.0);
        // Paper: Ax-FPM 0.487 / 0.29; Bfloat16 0.4 / 0.4.
        assert!((t.rows[1].energy - 0.487).abs() < 0.06, "{}", t.rows[1].energy);
        assert!((t.rows[1].delay - 0.29).abs() < 0.06, "{}", t.rows[1].delay);
        assert!((t.rows[2].energy - 0.4).abs() < 0.06, "{}", t.rows[2].energy);
        assert!((t.rows[2].delay - 0.4).abs() < 0.06, "{}", t.rows[2].delay);
    }

    #[test]
    fn table9_matches_paper_shape() {
        let t = table9();
        // Paper: HEAP 0.49 / 0.46; Ax-FPM 0.395 / 0.235.
        assert!((t.rows[1].energy - 0.49).abs() < 0.08);
        assert!((t.rows[2].energy - 0.395).abs() < 0.05);
        assert!(t.rows[2].delay < t.rows[1].delay, "Ax-FPM is the fastest");
        assert!(t.to_string().contains("Table 9"));
    }
}
