//! Multiplier noise profiles: paper Figures 3, 13, and 15.

use da_arith::profile::{noise_profile, summarize, ProfileSummary};
use da_arith::MultiplierKind;

use crate::Budget;

/// A rendered noise profile for one multiplier.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Figure label.
    pub title: String,
    /// Multiplier under test.
    pub kind: MultiplierKind,
    /// Summary statistics (inflation rate, envelope).
    pub summary: ProfileSummary,
}

impl std::fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} [{}]", self.title, self.kind)?;
        writeln!(
            f,
            "  inflated (|approx| >= |exact|): {:.1}%   negative errors: {:.1}%   mean |err|: {:.3e}",
            self.summary.inflation_rate * 100.0,
            self.summary.negative_fraction * 100.0,
            self.summary.mean_abs_error
        )?;
        writeln!(f, "  error envelope vs |product| ({} bins):", self.summary.bins.len())?;
        for bin in &self.summary.bins {
            if bin.count == 0 {
                continue;
            }
            writeln!(
                f,
                "    |p| ~ {:>5.2}: mean |err| {:>9.3e}  max {:>9.3e}  ({} samples)",
                bin.center, bin.mean_abs_error, bin.max_abs_error, bin.count
            )?;
        }
        Ok(())
    }
}

fn profile(title: &str, kind: MultiplierKind, samples: usize, lo: f32, hi: f32) -> ProfileReport {
    let points = noise_profile(&*kind.build(), samples, 3, lo, hi);
    ProfileReport { title: title.to_string(), kind, summary: summarize(&points, 10) }
}

/// **Figure 3** — Ax-FPM noise over operands in `[-1, 1]`.
pub fn fig3(budget: &Budget) -> ProfileReport {
    profile(
        "Figure 3: Ax-FPM noise profile, operands in [-1, 1]",
        MultiplierKind::AxFpm,
        budget.profile_samples,
        -1.0,
        1.0,
    )
}

/// **Figure 13** — Bfloat16 noise over operands in `[0, 1]`.
pub fn fig13(budget: &Budget) -> ProfileReport {
    profile(
        "Figure 13: Bfloat16 noise profile, operands in [0, 1]",
        MultiplierKind::Bfloat16,
        budget.profile_samples,
        0.0,
        1.0,
    )
}

/// **Figure 15** — Ax-FPM vs HEAP noise profiles side by side (Appendix A).
pub fn fig15(budget: &Budget) -> (ProfileReport, ProfileReport) {
    (
        profile(
            "Figure 15a: Ax-FPM noise profile, operands in [0, 1]",
            MultiplierKind::AxFpm,
            budget.profile_samples,
            0.0,
            1.0,
        ),
        profile(
            "Figure 15b: HEAP noise profile, operands in [0, 1]",
            MultiplierKind::Heap,
            budget.profile_samples,
            0.0,
            1.0,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_reproduces_the_three_trends() {
        let report = fig3(&Budget::smoke());
        // (ii) ~96% inflation; (iii) magnitude-dependent envelope.
        assert!(report.summary.inflation_rate > 0.9);
        assert!(report.summary.error_grows_with_magnitude());
        assert!(report.to_string().contains("Figure 3"));
    }

    #[test]
    fn fig13_bfloat_noise_is_small_and_mostly_negative() {
        let bf = fig13(&Budget::smoke());
        let ax = fig3(&Budget::smoke());
        assert!(bf.summary.negative_fraction > 0.5);
        assert!(bf.summary.mean_abs_error * 10.0 < ax.summary.mean_abs_error);
    }

    #[test]
    fn fig15_heap_inflates_less_than_ax_fpm() {
        let (ax, heap) = fig15(&Budget::smoke());
        assert!(heap.summary.inflation_rate < ax.summary.inflation_rate);
        assert!(heap.summary.mean_abs_error < ax.summary.mean_abs_error);
    }
}
