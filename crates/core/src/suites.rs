//! The attack suites of paper Table 1, with per-dataset hyper-parameters.

use da_attacks::decision::{BoundaryAttack, HopSkipJump};
use da_attacks::gradient::{CarliniWagnerL2, DeepFool, Fgsm, Jsma, Pgd};
use da_attacks::score::LocalSearch;
use da_attacks::Attack;

/// The eight attacks configured for SynthDigits (28×28 grayscale, large
/// perceptual budget — MNIST-style attack settings).
pub fn mnist_suite(seed: u64) -> Vec<Box<dyn Attack>> {
    vec![
        Box::new(Fgsm::new(0.25)),
        Box::new(Pgd::new(0.25, 0.04, 20, seed)),
        Box::new(Jsma::new(0.15)),
        Box::new(CarliniWagnerL2::standard()),
        Box::new(DeepFool::new(30, 0.02)),
        Box::new(LocalSearch::standard(seed)),
        Box::new(BoundaryAttack::new(150, seed)),
        Box::new(HopSkipJump::standard(seed)),
    ]
}

/// The eight attacks configured for SynthObjects (32×32 RGB, tighter
/// per-pixel budget — CIFAR-style attack settings).
pub fn cifar_suite(seed: u64) -> Vec<Box<dyn Attack>> {
    vec![
        Box::new(Fgsm::new(0.06)),
        Box::new(Pgd::new(0.06, 0.01, 20, seed)),
        Box::new(Jsma::new(0.10)),
        Box::new(CarliniWagnerL2::standard()),
        Box::new(DeepFool::new(30, 0.02)),
        Box::new(LocalSearch::standard(seed)),
        Box::new(BoundaryAttack::new(150, seed)),
        Box::new(HopSkipJump::standard(seed)),
    ]
}

/// The three-attack subset used in the DQ comparison (paper Table 5).
pub fn dq_suite(seed: u64) -> Vec<Box<dyn Attack>> {
    vec![
        Box::new(Fgsm::new(0.06)),
        Box::new(Pgd::new(0.06, 0.01, 20, seed)),
        Box::new(CarliniWagnerL2::standard()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_cover_the_papers_attack_table() {
        let names: Vec<String> = mnist_suite(0).iter().map(|a| a.name().to_string()).collect();
        assert_eq!(names, ["FGSM", "PGD", "JSMA", "C&W", "DF", "LSA", "BA", "HSJ"]);
        assert_eq!(cifar_suite(0).len(), 8);
        assert_eq!(dq_suite(0).len(), 3);
    }
}
