//! Sample budgets scaling experiments from unit-test smoke checks to
//! paper-scale runs.
//!
//! The paper itself subsampled its most expensive settings (white-box
//! attacks took 5–6 days per example on the authors' hardware, §5.3); the
//! budget abstraction makes that trade-off explicit and reproducible.

/// Sample counts and training budgets for the experiment runners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Budget {
    /// SynthDigits training-set size.
    pub digits_train: usize,
    /// SynthObjects training-set size.
    pub objects_train: usize,
    /// LeNet-5 training epochs.
    pub lenet_epochs: usize,
    /// AlexNet / DQ-ConvNet training epochs.
    pub alexnet_epochs: usize,
    /// Test images per transferability table.
    pub transfer_samples: usize,
    /// Queries used to train the black-box substitute.
    pub substitute_queries: usize,
    /// Images attacked in the white-box setting (C&W and DeepFool).
    pub whitebox_samples: usize,
    /// Clean images for the confidence CDF (paper: 1000).
    pub confidence_samples: usize,
    /// Random multiplications per noise profile (paper: 100 million).
    pub profile_samples: usize,
    /// Operand pairs per MRED/NMED measurement.
    pub metric_samples: usize,
}

impl Budget {
    /// Minimal budget for unit/integration tests (seconds end-to-end).
    pub fn smoke() -> Self {
        Budget {
            digits_train: 1500,
            objects_train: 1000,
            lenet_epochs: 3,
            alexnet_epochs: 3,
            transfer_samples: 6,
            substitute_queries: 300,
            whitebox_samples: 3,
            confidence_samples: 40,
            profile_samples: 5_000,
            metric_samples: 5_000,
        }
    }

    /// Bench-scale budget: minutes end-to-end, stable shapes.
    pub fn quick() -> Self {
        Budget {
            digits_train: 4_000,
            objects_train: 4_000,
            lenet_epochs: 3,
            alexnet_epochs: 5,
            transfer_samples: 40,
            substitute_queries: 2_000,
            whitebox_samples: 10,
            confidence_samples: 300,
            profile_samples: 200_000,
            metric_samples: 50_000,
        }
    }

    /// Paper-scale budget (hours end-to-end; the paper's own sample counts
    /// where those are disclosed).
    pub fn paper() -> Self {
        Budget {
            digits_train: 12_000,
            objects_train: 10_000,
            lenet_epochs: 5,
            alexnet_epochs: 8,
            transfer_samples: 200,
            substitute_queries: 8_000,
            whitebox_samples: 40,
            confidence_samples: 1_000,
            profile_samples: 5_000_000,
            metric_samples: 1_000_000,
        }
    }

    /// A short stable tag used in model-cache keys.
    pub fn cache_tag(&self) -> String {
        format!(
            "d{}e{}-o{}e{}",
            self.digits_train, self.lenet_epochs, self.objects_train, self.alexnet_epochs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_scale_monotonically() {
        let (s, q, p) = (Budget::smoke(), Budget::quick(), Budget::paper());
        assert!(s.digits_train < q.digits_train && q.digits_train < p.digits_train);
        assert!(s.transfer_samples < q.transfer_samples);
        assert!(q.transfer_samples < p.transfer_samples);
        assert!(s.profile_samples < q.profile_samples);
    }

    #[test]
    fn cache_tags_distinguish_budgets() {
        assert_ne!(Budget::smoke().cache_tag(), Budget::quick().cache_tag());
        assert_eq!(Budget::quick().cache_tag(), Budget::quick().cache_tag());
    }
}
